"""Experiment runner: execute search methods over a dataset's query workload.

The runner is the shared engine behind every figure of Section VII:

* it builds the :class:`~repro.db.database.GraphDatabase` of a dataset once,
* instantiates the requested methods (GBDA and its variants need an offline
  :meth:`fit`; the baselines are stateless estimators),
* runs the full query workload for each requested ``(τ̂, γ)`` combination,
* and reports per-method average query time plus micro-averaged precision /
  recall / F1 against the dataset's ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import EstimatorSearch, PairwiseGEDEstimator
from repro.core.search import GBDASearch
from repro.datasets.registry import Dataset
from repro.db.database import GraphDatabase
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.evaluation.ground_truth import GroundTruthOracle
from repro.evaluation.metrics import ConfusionCounts, aggregate_counts, evaluate_answer

__all__ = ["MethodResult", "ExperimentRunner"]


@dataclass
class MethodResult:
    """Aggregated outcome of one method at one (τ̂, γ) setting."""

    method: str
    tau_hat: int
    gamma: Optional[float]
    average_query_seconds: float
    counts: ConfusionCounts
    num_queries: int
    offline_seconds: float = 0.0
    answers: List[QueryAnswer] = field(default_factory=list)

    @property
    def precision(self) -> float:
        """Micro-averaged precision over the query workload."""
        return self.counts.precision

    @property
    def recall(self) -> float:
        """Micro-averaged recall over the query workload."""
        return self.counts.recall

    @property
    def f1(self) -> float:
        """Micro-averaged F1 over the query workload."""
        return self.counts.f1


class ExperimentRunner:
    """Run GBDA and baseline searches over a dataset's query workload.

    Parameters
    ----------
    dataset:
        The dataset (database graphs, query graphs, ground truth).
    max_queries:
        Optional cap on the number of query graphs used (keeps benchmark
        wall-clock reasonable while preserving the workload's diversity).
    """

    def __init__(self, dataset: Dataset, *, max_queries: Optional[int] = None) -> None:
        self.dataset = dataset
        self.oracle = GroundTruthOracle(dataset)
        self.database: GraphDatabase = self.oracle.build_database()
        num_queries = len(dataset.query_graphs)
        if max_queries is not None:
            num_queries = min(num_queries, max_queries)
        self.query_indices = list(range(num_queries))
        self._gbda_cache: Dict[tuple, GBDASearch] = {}

    # ------------------------------------------------------------------ #
    # method construction
    # ------------------------------------------------------------------ #
    def gbda(
        self,
        *,
        max_tau: int,
        num_prior_pairs: int = 2000,
        num_gmm_components: int = 3,
        seed: int = 0,
        use_index_pruning: bool = False,
        factory: Optional[Callable[..., GBDASearch]] = None,
    ) -> GBDASearch:
        """Return a fitted GBDA search (cached per configuration)."""
        factory = factory or GBDASearch
        key = (factory, max_tau, num_prior_pairs, num_gmm_components, seed, use_index_pruning)
        if key not in self._gbda_cache:
            search = factory(
                self.database,
                max_tau=max_tau,
                num_prior_pairs=num_prior_pairs,
                num_gmm_components=num_gmm_components,
                seed=seed,
                use_index_pruning=use_index_pruning,
            )
            search.fit()
            self._gbda_cache[key] = search
        return self._gbda_cache[key]

    def baseline(self, estimator: PairwiseGEDEstimator) -> EstimatorSearch:
        """Wrap a pairwise estimator into a similarity search over the database."""
        return EstimatorSearch(self.database, estimator)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_gbda(
        self,
        search: GBDASearch,
        tau_hat: int,
        gamma: float,
        *,
        method_label: Optional[str] = None,
    ) -> MethodResult:
        """Run the GBDA (or variant) search over the whole query workload."""
        counts: List[ConfusionCounts] = []
        answers: List[QueryAnswer] = []
        total_seconds = 0.0
        for query_index in self.query_indices:
            query_graph = self.dataset.query_graphs[query_index]
            start = time.perf_counter()
            result = search.query(SimilarityQuery(query_graph, tau_hat, gamma))
            total_seconds += time.perf_counter() - start
            answer = result.answer
            answers.append(answer)
            truth = self.oracle.answer_set(query_index, tau_hat)
            counts.append(evaluate_answer(answer.accepted_ids, truth))
        num_queries = max(len(self.query_indices), 1)
        return MethodResult(
            method=method_label or search.method_name,
            tau_hat=tau_hat,
            gamma=gamma,
            average_query_seconds=total_seconds / num_queries,
            counts=aggregate_counts(counts),
            num_queries=len(self.query_indices),
            offline_seconds=search.offline_seconds,
            answers=answers,
        )

    def run_baseline(
        self,
        estimator: PairwiseGEDEstimator,
        tau_hat: int,
        *,
        method_label: Optional[str] = None,
    ) -> MethodResult:
        """Run a baseline estimator-search over the whole query workload."""
        search = self.baseline(estimator)
        counts: List[ConfusionCounts] = []
        answers: List[QueryAnswer] = []
        total_seconds = 0.0
        for query_index in self.query_indices:
            query_graph = self.dataset.query_graphs[query_index]
            start = time.perf_counter()
            answer = search.query(SimilarityQuery(query_graph, tau_hat))
            total_seconds += time.perf_counter() - start
            answers.append(answer)
            truth = self.oracle.answer_set(query_index, tau_hat)
            counts.append(evaluate_answer(answer.accepted_ids, truth))
        num_queries = max(len(self.query_indices), 1)
        return MethodResult(
            method=method_label or estimator.method_name,
            tau_hat=tau_hat,
            gamma=None,
            average_query_seconds=total_seconds / num_queries,
            counts=aggregate_counts(counts),
            num_queries=len(self.query_indices),
            answers=answers,
        )

    def run_baseline_multi(
        self,
        estimator: PairwiseGEDEstimator,
        tau_values: Sequence[int],
        *,
        method_label: Optional[str] = None,
    ) -> List[MethodResult]:
        """Evaluate a baseline at several thresholds with a single estimation pass.

        The pairwise estimates do not depend on τ̂, so computing them once per
        query and thresholding afterwards gives exactly the same answers as
        :meth:`run_baseline` at a fraction of the cost — the per-query time
        reported for each threshold is the (shared) estimation time.
        """
        per_query_scores: List[Dict[int, float]] = []
        total_seconds = 0.0
        search = self.baseline(estimator)
        for query_index in self.query_indices:
            query_graph = self.dataset.query_graphs[query_index]
            start = time.perf_counter()
            answer = search.query(SimilarityQuery(query_graph, max(tau_values)))
            total_seconds += time.perf_counter() - start
            per_query_scores.append(answer.scores)
        num_queries = max(len(self.query_indices), 1)

        results = []
        for tau_hat in tau_values:
            counts: List[ConfusionCounts] = []
            answers: List[QueryAnswer] = []
            for position, query_index in enumerate(self.query_indices):
                scores = per_query_scores[position]
                accepted = frozenset(
                    graph_id for graph_id, score in scores.items() if score <= tau_hat
                )
                answers.append(
                    QueryAnswer(
                        method=method_label or estimator.method_name,
                        accepted_ids=accepted,
                        scores=scores,
                    )
                )
                truth = self.oracle.answer_set(query_index, tau_hat)
                counts.append(evaluate_answer(accepted, truth))
            results.append(
                MethodResult(
                    method=method_label or estimator.method_name,
                    tau_hat=tau_hat,
                    gamma=None,
                    average_query_seconds=total_seconds / num_queries,
                    counts=aggregate_counts(counts),
                    num_queries=len(self.query_indices),
                    answers=answers,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def effectiveness_sweep(
        self,
        tau_values: Sequence[int],
        gamma_values: Sequence[float],
        baselines: Sequence[PairwiseGEDEstimator],
        *,
        max_tau: Optional[int] = None,
        num_prior_pairs: int = 2000,
        seed: int = 0,
    ) -> List[MethodResult]:
        """Run the precision/recall/F1 sweep of Figures 10–21.

        GBDA is evaluated at every (τ̂, γ) combination; each baseline is
        evaluated at every τ̂ (baselines have no γ, and their pairwise
        estimates are computed once and re-thresholded per τ̂).
        """
        tau_values = list(tau_values)
        results: List[MethodResult] = []
        fitted = self.gbda(
            max_tau=max_tau if max_tau is not None else max(tau_values),
            num_prior_pairs=num_prior_pairs,
            seed=seed,
        )
        baseline_results: Dict[str, List[MethodResult]] = {}
        for estimator in baselines:
            baseline_results[estimator.method_name] = self.run_baseline_multi(
                estimator, tau_values
            )
        for position, tau_hat in enumerate(tau_values):
            for gamma in gamma_values:
                results.append(
                    self.run_gbda(
                        fitted, tau_hat, gamma, method_label=f"GBDA(γ={gamma:.2f})"
                    )
                )
            for estimator in baselines:
                results.append(baseline_results[estimator.method_name][position])
        return results
