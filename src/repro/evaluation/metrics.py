"""Effectiveness metrics: precision, recall, and F1-score.

The paper evaluates every search method by comparing its answer set against
the true answer set (graphs whose exact GED to the query is at most τ̂) and
reporting precision, recall, and F1 (Section VII-C.2).  The conventions for
degenerate cases follow the usual information-retrieval definitions:

* empty retrieved set and empty true set → precision = recall = F1 = 1
  (the method correctly returned nothing);
* empty retrieved set, non-empty true set → precision 1 (vacuous), recall 0;
* non-empty retrieved set, empty true set → precision 0, recall 1 (vacuous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

__all__ = ["ConfusionCounts", "precision_recall_f1", "evaluate_answer", "aggregate_counts"]


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts of one (or several pooled) queries."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of retrieved graphs that are truly similar."""
        retrieved = self.true_positives + self.false_positives
        if retrieved == 0:
            return 1.0
        return self.true_positives / retrieved

    @property
    def recall(self) -> float:
        """Fraction of truly similar graphs that were retrieved."""
        relevant = self.true_positives + self.false_negatives
        if relevant == 0:
            return 1.0
        return self.true_positives / relevant

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def evaluate_answer(retrieved: Iterable[int], relevant: Iterable[int]) -> ConfusionCounts:
    """Compare a retrieved id set against the true answer id set."""
    retrieved_set: Set[int] = set(retrieved)
    relevant_set: Set[int] = set(relevant)
    true_positives = len(retrieved_set & relevant_set)
    return ConfusionCounts(
        true_positives=true_positives,
        false_positives=len(retrieved_set) - true_positives,
        false_negatives=len(relevant_set) - true_positives,
    )


def precision_recall_f1(
    retrieved: Iterable[int], relevant: Iterable[int]
) -> Tuple[float, float, float]:
    """Convenience wrapper returning the (precision, recall, F1) triple."""
    counts = evaluate_answer(retrieved, relevant)
    return counts.precision, counts.recall, counts.f1


def aggregate_counts(counts: Iterable[ConfusionCounts]) -> ConfusionCounts:
    """Micro-average: pool the confusion counts of several queries.

    Micro-averaging (pooling counts before computing the ratios) is the
    standard way to aggregate retrieval metrics over a query workload and is
    how the per-dataset curves of Figures 10–21 are produced here.
    """
    total = ConfusionCounts(0, 0, 0)
    for item in counts:
        total = total + item
    return total
