"""Plain-text tables and series for the benchmark harness output.

The benchmark harness regenerates every table and figure of the paper as
text: tables are printed as aligned columns, figures (which are line plots
in the paper) are printed as series — one row per x-value with one column
per method/parameter combination — so that shapes and crossovers can be read
directly from the pytest output and from the committed logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence, Union

Number = Union[int, float, str, bool]

__all__ = ["Table", "format_table", "format_series"]


def _format_cell(value: Number) -> str:
    """Render one cell: floats get 4 significant digits, the rest is str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A simple column-oriented table with a title."""

    title: str
    columns: List[str]
    rows: List[List[Number]] = field(default_factory=list)

    def add_row(self, *values: Number) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_mapping(self, mapping: Mapping[str, Number]) -> None:
        """Append one row given as a column-name → value mapping."""
        self.add_row(*[mapping.get(column, "") for column in self.columns])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:
        return self.render()


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[Number]]) -> str:
    """Format a table with a title line, a header, and aligned columns."""
    header = [str(column) for column in columns]
    rendered_rows = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in header]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines = [f"== {title} ==", render_line(header), render_line(["-" * width for width in widths])]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
) -> str:
    """Format a "figure" as a table: one row per x-value, one column per series.

    ``series`` maps a series name (e.g. ``"GBDA(γ=0.9)"``) to its y-values,
    which must align with ``x_values``.
    """
    columns = [x_label] + list(series)
    rows: List[List[Number]] = []
    for index, x_value in enumerate(x_values):
        row: List[Number] = [x_value]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(title, columns, rows)
