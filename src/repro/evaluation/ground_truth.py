"""Ground-truth answer sets for effectiveness evaluation.

Two sources of truth are supported, mirroring the paper's own strategy:

* **recorded ground truth** — datasets built from known-GED families record
  the exact GED of every (query, same-family graph) pair; everything else is
  provably farther away than any experimental threshold;
* **exact computation** — for tiny graphs the A* baseline can compute exact
  GEDs on demand, which the tests use to validate the recorded ground truth.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.baselines.ged_exact import exact_ged
from repro.datasets.registry import Dataset
from repro.db.database import GraphDatabase
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

__all__ = ["true_answer_set", "GroundTruthOracle"]


def true_answer_set(dataset: Dataset, query_index: int, tau_hat: int) -> FrozenSet[int]:
    """Return the true answer set of one query at threshold ``τ̂``."""
    query_key = dataset.query_key(query_index)
    return dataset.ground_truth.answer_set(query_key, tau_hat)


class GroundTruthOracle:
    """Answer-set oracle combining recorded ground truth with exact GED.

    Parameters
    ----------
    dataset:
        The dataset whose ground truth should be served.
    exact_fallback_max_vertices:
        When a (query, graph) pair has no recorded ground truth and both
        graphs are at most this size, the oracle computes the exact GED with
        A* instead of treating the pair as "far apart".  Disabled by default
        because recorded ground truth is complete for the generated datasets.
    """

    def __init__(self, dataset: Dataset, *, exact_fallback_max_vertices: int = 0) -> None:
        self.dataset = dataset
        self.exact_fallback_max_vertices = exact_fallback_max_vertices
        self._exact_cache: Dict[tuple, int] = {}

    def ged(self, query_index: int, graph_id: int) -> Optional[int]:
        """True GED of a (query, database graph) pair, or ``None`` when far apart."""
        query_key = self.dataset.query_key(query_index)
        recorded = self.dataset.ground_truth.ged(query_key, graph_id)
        if recorded is not None:
            return recorded
        if self.exact_fallback_max_vertices <= 0:
            return None
        query = self.dataset.query_graphs[query_index]
        graph = self.dataset.database_graphs[graph_id]
        limit = self.exact_fallback_max_vertices
        if query.num_vertices > limit or graph.num_vertices > limit:
            return None
        cache_key = (query_key, graph_id)
        if cache_key not in self._exact_cache:
            self._exact_cache[cache_key] = exact_ged(query, graph, max_vertices=limit)
        return self._exact_cache[cache_key]

    def answer_set(self, query_index: int, tau_hat: int) -> FrozenSet[int]:
        """True answer set for one query at threshold ``τ̂``."""
        if tau_hat < 0:
            raise DatasetError("the similarity threshold must be non-negative")
        if self.exact_fallback_max_vertices <= 0:
            return true_answer_set(self.dataset, query_index, tau_hat)
        accepted = set(true_answer_set(self.dataset, query_index, tau_hat))
        for graph_id in range(len(self.dataset.database_graphs)):
            if graph_id in accepted:
                continue
            ged = self.ged(query_index, graph_id)
            if ged is not None and ged <= tau_hat:
                accepted.add(graph_id)
        return frozenset(accepted)

    def build_database(self) -> GraphDatabase:
        """Construct a :class:`GraphDatabase` over the dataset's database graphs."""
        return GraphDatabase(self.dataset.database_graphs, name=self.dataset.name)

    def query_graph(self, query_index: int) -> Graph:
        """Return one query graph of the workload."""
        return self.dataset.query_graphs[query_index]
