"""Graph database storage: graphs plus pre-computed branch multisets.

:class:`GraphDatabase` is the container every search method in this
repository operates on.  Each stored graph keeps:

* the :class:`~repro.graphs.graph.Graph` itself,
* its branch multiset (Definition 2) for ``O(nd)`` GBD computation,
* its vertex/edge counts for the extended-order computation.

The database also tracks the union label alphabets ``LV``/``LE`` (needed by
the branch-type count ``D`` of the probabilistic model) and exposes the
GBD between a query graph and any member in ``O(nd)`` using the cached
branch multisets.
"""

from __future__ import annotations

import inspect
import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.branches import branch_multiset
from repro.core.gbd import graph_branch_distance, variant_graph_branch_distance
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph, union_label_alphabets

__all__ = ["GraphDatabase", "StoredGraph"]


@dataclass(frozen=True)
class StoredGraph:
    """A database entry: the graph and its pre-computed auxiliary structures."""

    graph_id: int
    graph: Graph
    branches: Counter
    num_vertices: int
    num_edges: int

    @property
    def name(self) -> str:
        """Name of the underlying graph (falls back to the numeric id)."""
        return self.graph.name or f"g{self.graph_id}"


class GraphDatabase:
    """An in-memory collection of labeled graphs with pre-computed branches.

    Parameters
    ----------
    graphs:
        Initial graphs to add.
    name:
        Optional database name (used in reports).
    """

    def __init__(self, graphs: Optional[Iterable[Graph]] = None, *, name: str = "database") -> None:
        self.name = name
        self._entries: List[StoredGraph] = []
        self._vertex_labels: set = set()
        self._edge_labels: set = set()
        self._subscribers: List[Callable[[StoredGraph], None]] = []
        self._revision = 0
        if graphs is not None:
            for graph in graphs:
                self.add(graph)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, graph: Graph, *, branches: Optional[Counter] = None) -> int:
        """Add a graph; pre-compute its branch multiset; return its id.

        ``branches`` optionally supplies a pre-computed branch multiset (the
        snapshot loader uses this to skip re-extraction); it must equal
        ``branch_multiset(graph)`` or GBD computations will be wrong.

        Every registered :meth:`subscribe` callback is notified with the new
        :class:`StoredGraph` so derived structures (e.g. the branch inverted
        index) stay consistent with incremental additions.
        """
        graph_id = len(self._entries)
        entry = StoredGraph(
            graph_id=graph_id,
            graph=graph,
            branches=branch_multiset(graph) if branches is None else branches,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        self._entries.append(entry)
        self._vertex_labels |= graph.vertex_label_set()
        self._edge_labels |= graph.edge_label_set()
        self._revision += 1
        self._notify(entry)
        return graph_id

    @property
    def revision(self) -> int:
        """Monotonic mutation counter: increments once per :meth:`add`.

        Derived artifacts (fitted priors, serving snapshots) record the
        revision they were built against, so staleness is detectable
        without comparing graph contents.
        """
        return self._revision

    def subscribe(self, callback: Callable[[StoredGraph], None]) -> None:
        """Register ``callback`` to be invoked with every newly added entry.

        This is the incremental hook that keeps auxiliary structures (the
        :class:`~repro.db.index.BranchInvertedIndex`, serving engines) from
        silently serving stale state when graphs are added after they were
        built.

        Bound methods are held through weak references, so an index or
        engine that is otherwise dropped does not stay alive (and keep being
        notified) just because it subscribed here; plain functions and other
        callables are held strongly — pair them with :meth:`unsubscribe`.
        """
        if inspect.ismethod(callback):
            self._subscribers.append(weakref.WeakMethod(callback))
        else:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[StoredGraph], None]) -> None:
        """Remove a previously registered callback (no-op when absent)."""
        for subscriber in list(self._subscribers):
            resolved = subscriber() if isinstance(subscriber, weakref.WeakMethod) else subscriber
            if resolved is None or resolved == callback:
                self._subscribers.remove(subscriber)

    def _notify(self, entry: StoredGraph) -> None:
        """Invoke live subscribers; prune the ones whose owners were collected."""
        dead = []
        for subscriber in list(self._subscribers):
            if isinstance(subscriber, weakref.WeakMethod):
                callback = subscriber()
                if callback is None:
                    dead.append(subscriber)
                    continue
            else:
                callback = subscriber
            callback(entry)
        for subscriber in dead:
            self._subscribers.remove(subscriber)

    # ------------------------------------------------------------------ #
    # pickling: weak references are not picklable; subscribers re-register
    # themselves (see BranchInvertedIndex / BatchQueryEngine __setstate__)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    def extend(self, graphs: Iterable[Graph]) -> List[int]:
        """Add several graphs and return their ids."""
        return [self.add(graph) for graph in graphs]

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredGraph]:
        return iter(self._entries)

    def __getitem__(self, graph_id: int) -> StoredGraph:
        try:
            return self._entries[graph_id]
        except IndexError as exc:
            raise DatasetError(f"graph id {graph_id} is out of range") from exc

    def graphs(self) -> List[Graph]:
        """Return the stored graphs (in id order)."""
        return [entry.graph for entry in self._entries]

    def entries(self) -> Sequence[StoredGraph]:
        """Return the stored entries (in id order)."""
        return list(self._entries)

    # ------------------------------------------------------------------ #
    # label alphabets and statistics
    # ------------------------------------------------------------------ #
    @property
    def num_vertex_labels(self) -> int:
        """Size of the union vertex-label alphabet ``|LV|``."""
        return max(len(self._vertex_labels), 1)

    @property
    def num_edge_labels(self) -> int:
        """Size of the union edge-label alphabet ``|LE|``."""
        return max(len(self._edge_labels), 1)

    @property
    def max_vertices(self) -> int:
        """Largest ``|V|`` among the stored graphs (0 for an empty database)."""
        return max((entry.num_vertices for entry in self._entries), default=0)

    @property
    def average_degree(self) -> float:
        """Average degree across all stored graphs."""
        total_vertices = sum(entry.num_vertices for entry in self._entries)
        total_edges = sum(entry.num_edges for entry in self._entries)
        if total_vertices == 0:
            return 0.0
        return 2.0 * total_edges / total_vertices

    def label_alphabets(self):
        """Return ``(LV, LE)`` as frozensets (recomputed from the graphs)."""
        return union_label_alphabets(self.graphs())

    # ------------------------------------------------------------------ #
    # distances against a query graph
    # ------------------------------------------------------------------ #
    def gbd_to(self, query: Graph, graph_id: int, *, query_branches: Optional[Counter] = None) -> int:
        """GBD between ``query`` and the stored graph ``graph_id`` (cached branches)."""
        entry = self[graph_id]
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return graph_branch_distance(
            query, entry.graph, branches1=branches_q, branches2=entry.branches
        )

    def vgbd_to(
        self,
        query: Graph,
        graph_id: int,
        weight: float,
        *,
        query_branches: Optional[Counter] = None,
    ) -> float:
        """Variant GBD (Equation 26) between ``query`` and a stored graph."""
        entry = self[graph_id]
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return variant_graph_branch_distance(
            query, entry.graph, weight, branches1=branches_q, branches2=entry.branches
        )

    def distinct_extended_orders(self, query: Graph) -> Dict[int, List[int]]:
        """Group stored graph ids by the extended order they induce with ``query``.

        The online stage of GBDA re-uses the Λ1 model across all graphs with
        the same ``max(|V_Q|, |V_G|)``; this helper exposes that grouping.
        """
        groups: Dict[int, List[int]] = {}
        for entry in self._entries:
            order = max(query.num_vertices, entry.num_vertices)
            groups.setdefault(order, []).append(entry.graph_id)
        return groups

    def __repr__(self) -> str:
        return f"<GraphDatabase {self.name!r} |D|={len(self)}>"
