"""Graph database storage: graphs plus pre-computed branch multisets.

:class:`GraphDatabase` is the container every search method in this
repository operates on.  Each stored graph keeps:

* the :class:`~repro.graphs.graph.Graph` itself,
* its branch multiset (Definition 2) for ``O(nd)`` GBD computation,
* its vertex/edge counts for the extended-order computation.

The database also tracks the union label alphabets ``LV``/``LE`` (needed by
the branch-type count ``D`` of the probabilistic model) and exposes the
GBD between a query graph and any member in ``O(nd)`` using the cached
branch multisets.
"""

from __future__ import annotations

import inspect
import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.branches import branch_multiset
from repro.core.gbd import graph_branch_distance, variant_graph_branch_distance
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph, union_label_alphabets

__all__ = ["GraphDatabase", "GraphDatabaseShard", "StoredGraph"]


@dataclass(frozen=True)
class StoredGraph:
    """A database entry: the graph and its pre-computed auxiliary structures."""

    graph_id: int
    graph: Graph
    branches: Counter
    num_vertices: int
    num_edges: int

    @property
    def name(self) -> str:
        """Name of the underlying graph (falls back to the numeric id)."""
        return self.graph.name or f"g{self.graph_id}"


class GraphDatabase:
    """An in-memory collection of labeled graphs with pre-computed branches.

    Parameters
    ----------
    graphs:
        Initial graphs to add.
    name:
        Optional database name (used in reports).
    """

    def __init__(self, graphs: Optional[Iterable[Graph]] = None, *, name: str = "database") -> None:
        self.name = name
        self._entries: List[StoredGraph] = []
        self._vertex_labels: set = set()
        self._edge_labels: set = set()
        # Each subscriber is a (callback-or-WeakMethod, batched) pair.
        self._subscribers: List = []
        self._revision = 0
        if graphs is not None:
            self.add_many(graphs)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def _make_entry(self, graph: Graph, branches: Optional[Counter]) -> StoredGraph:
        entry = StoredGraph(
            graph_id=len(self._entries),
            graph=graph,
            branches=branch_multiset(graph) if branches is None else branches,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        self._entries.append(entry)
        self._vertex_labels |= graph.vertex_label_set()
        self._edge_labels |= graph.edge_label_set()
        self._revision += 1
        return entry

    def add(self, graph: Graph, *, branches: Optional[Counter] = None) -> int:
        """Add a graph; pre-compute its branch multiset; return its id.

        ``branches`` optionally supplies a pre-computed branch multiset (the
        snapshot loader uses this to skip re-extraction); it must equal
        ``branch_multiset(graph)`` or GBD computations will be wrong.

        Every registered :meth:`subscribe` callback is notified with the new
        :class:`StoredGraph` so derived structures (e.g. the branch inverted
        index) stay consistent with incremental additions.
        """
        entry = self._make_entry(graph, branches)
        self._notify((entry,))
        return entry.graph_id

    def add_many(self, graphs: Iterable[Graph]) -> List[int]:
        """Add several graphs with a single round of notifications; return their ids.

        Per-entry subscribers still see every graph, but subscribers
        registered with ``subscribe(..., batched=True)`` receive the whole
        batch in one call — so bulk loads trigger one cache invalidation /
        one derived-structure refresh instead of one per graph.  Combined
        with the columnar index's append buffer this makes ``extend`` of
        ``k`` graphs cost one compaction, not ``k`` dense rebuilds.
        """
        entries = [self._make_entry(graph, None) for graph in graphs]
        if entries:
            self._notify(entries)
        return [entry.graph_id for entry in entries]

    @property
    def revision(self) -> int:
        """Monotonic mutation counter: increments once per added graph.

        Derived artifacts (fitted priors, serving snapshots) record the
        revision they were built against, so staleness is detectable
        without comparing graph contents.
        """
        return self._revision

    def subscribe(
        self, callback: Callable, *, batched: bool = False
    ) -> None:
        """Register ``callback`` to be invoked with newly added entries.

        This is the incremental hook that keeps auxiliary structures (the
        :class:`~repro.db.index.BranchInvertedIndex`, serving engines) from
        silently serving stale state when graphs are added after they were
        built.

        With ``batched=False`` (default) the callback receives one
        :class:`StoredGraph` per added graph.  With ``batched=True`` it
        receives the *list* of entries of each mutation — one call per
        :meth:`add`, and one call total per :meth:`add_many`/:meth:`extend`
        bulk load, which is what lets derived structures compact once.

        Bound methods are held through weak references, so an index or
        engine that is otherwise dropped does not stay alive (and keep being
        notified) just because it subscribed here; plain functions and other
        callables are held strongly — pair them with :meth:`unsubscribe`.
        """
        if inspect.ismethod(callback):
            self._subscribers.append((weakref.WeakMethod(callback), batched))
        else:
            self._subscribers.append((callback, batched))

    def unsubscribe(self, callback: Callable) -> None:
        """Remove a previously registered callback (no-op when absent)."""
        for subscriber in list(self._subscribers):
            held, _batched = subscriber
            resolved = held() if isinstance(held, weakref.WeakMethod) else held
            if resolved is None or resolved == callback:
                self._subscribers.remove(subscriber)

    def _notify(self, entries: Sequence[StoredGraph]) -> None:
        """Invoke live subscribers; prune the ones whose owners were collected."""
        dead = []
        for subscriber in list(self._subscribers):
            held, batched = subscriber
            if isinstance(held, weakref.WeakMethod):
                callback = held()
                if callback is None:
                    dead.append(subscriber)
                    continue
            else:
                callback = held
            if batched:
                callback(list(entries))
            else:
                for entry in entries:
                    callback(entry)
        for subscriber in dead:
            self._subscribers.remove(subscriber)

    # ------------------------------------------------------------------ #
    # pickling: weak references are not picklable; subscribers re-register
    # themselves (see BranchInvertedIndex / BatchQueryEngine __setstate__)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    def extend(self, graphs: Iterable[Graph]) -> List[int]:
        """Add several graphs and return their ids (one notification round)."""
        return self.add_many(graphs)

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def shard(self, num_shards: int) -> List["GraphDatabaseShard"]:
        """Partition the database into id-preserving, read-only shard views.

        Entries are split into ``min(num_shards, len(self))`` contiguous
        blocks; each view exposes the usual read API but keeps the *global*
        graph ids, so per-shard query answers (accepted ids, score dicts)
        can be merged by simple union — the basis of shard-parallel scoring
        and of the serving executor's ``"data-parallel"`` mode.

        The views are snapshots: graphs added to the parent afterwards are
        not reflected (re-shard to pick them up), and the views themselves
        reject mutation.
        """
        if num_shards < 1:
            raise DatasetError("the number of shards must be at least 1")
        if len(self._entries) == 0:
            raise DatasetError("cannot shard an empty database")
        count = min(int(num_shards), len(self._entries))
        shards = []
        for shard_index in range(count):
            low = (len(self._entries) * shard_index) // count
            high = (len(self._entries) * (shard_index + 1)) // count
            shards.append(
                GraphDatabaseShard(self, self._entries[low:high], shard_index, count)
            )
        return shards

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredGraph]:
        return iter(self._entries)

    def __getitem__(self, graph_id: int) -> StoredGraph:
        try:
            return self._entries[graph_id]
        except IndexError as exc:
            raise DatasetError(f"graph id {graph_id} is out of range") from exc

    def graphs(self) -> List[Graph]:
        """Return the stored graphs (in id order)."""
        return [entry.graph for entry in self._entries]

    def entries(self) -> Sequence[StoredGraph]:
        """Return the stored entries (in id order)."""
        return list(self._entries)

    # ------------------------------------------------------------------ #
    # label alphabets and statistics
    # ------------------------------------------------------------------ #
    @property
    def num_vertex_labels(self) -> int:
        """Size of the union vertex-label alphabet ``|LV|``."""
        return max(len(self._vertex_labels), 1)

    @property
    def num_edge_labels(self) -> int:
        """Size of the union edge-label alphabet ``|LE|``."""
        return max(len(self._edge_labels), 1)

    @property
    def max_vertices(self) -> int:
        """Largest ``|V|`` among the stored graphs (0 for an empty database)."""
        return max((entry.num_vertices for entry in self._entries), default=0)

    @property
    def average_degree(self) -> float:
        """Average degree across all stored graphs."""
        total_vertices = sum(entry.num_vertices for entry in self._entries)
        total_edges = sum(entry.num_edges for entry in self._entries)
        if total_vertices == 0:
            return 0.0
        return 2.0 * total_edges / total_vertices

    def label_alphabets(self):
        """Return ``(LV, LE)`` as frozensets (recomputed from the graphs)."""
        return union_label_alphabets(self.graphs())

    # ------------------------------------------------------------------ #
    # distances against a query graph
    # ------------------------------------------------------------------ #
    def gbd_to(self, query: Graph, graph_id: int, *, query_branches: Optional[Counter] = None) -> int:
        """GBD between ``query`` and the stored graph ``graph_id`` (cached branches)."""
        entry = self[graph_id]
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return graph_branch_distance(
            query, entry.graph, branches1=branches_q, branches2=entry.branches
        )

    def vgbd_to(
        self,
        query: Graph,
        graph_id: int,
        weight: float,
        *,
        query_branches: Optional[Counter] = None,
    ) -> float:
        """Variant GBD (Equation 26) between ``query`` and a stored graph."""
        entry = self[graph_id]
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return variant_graph_branch_distance(
            query, entry.graph, weight, branches1=branches_q, branches2=entry.branches
        )

    def distinct_extended_orders(self, query: Graph) -> Dict[int, List[int]]:
        """Group stored graph ids by the extended order they induce with ``query``.

        The online stage of GBDA re-uses the Λ1 model across all graphs with
        the same ``max(|V_Q|, |V_G|)``; this helper exposes that grouping.
        """
        groups: Dict[int, List[int]] = {}
        for entry in self._entries:
            order = max(query.num_vertices, entry.num_vertices)
            groups.setdefault(order, []).append(entry.graph_id)
        return groups

    def __repr__(self) -> str:
        return f"<GraphDatabase {self.name!r} |D|={len(self)}>"


class GraphDatabaseShard(GraphDatabase):
    """A read-only, id-preserving view over a contiguous slice of a database.

    Produced by :meth:`GraphDatabase.shard`.  The view shares the parent's
    :class:`StoredGraph` entries (no graph copies) and keeps their global
    ids, so anything computed against a shard — GBDs, posterior scores,
    accepted sets — speaks the same id space as the full database and can be
    merged with the other shards' results by plain union.

    ``__getitem__`` therefore indexes by *global* graph id (restricted to
    the ids present in this shard), and mutation is rejected: a shard is a
    snapshot taken at :meth:`~GraphDatabase.shard` time.
    """

    def __init__(
        self,
        parent: GraphDatabase,
        entries: Sequence[StoredGraph],
        shard_index: int,
        num_shards: int,
    ) -> None:
        self.name = f"{parent.name}#{shard_index}/{num_shards}"
        self._entries = list(entries)
        # Share the parent's label alphabets: the probabilistic model's D
        # depends on the *database* alphabets, not the shard's subset.
        self._vertex_labels = set(parent._vertex_labels)
        self._edge_labels = set(parent._edge_labels)
        self._subscribers: List = []
        self._revision = parent.revision
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self._entries_by_id: Dict[int, StoredGraph] = {
            entry.graph_id: entry for entry in self._entries
        }

    def add(self, graph: Graph, *, branches: Optional[Counter] = None) -> int:
        raise DatasetError(
            "shard views are read-only snapshots; add graphs to the parent "
            "database and re-shard"
        )

    def add_many(self, graphs: Iterable[Graph]) -> List[int]:
        raise DatasetError(
            "shard views are read-only snapshots; add graphs to the parent "
            "database and re-shard"
        )

    def __getitem__(self, graph_id: int) -> StoredGraph:
        try:
            return self._entries_by_id[graph_id]
        except KeyError as exc:
            raise DatasetError(
                f"graph id {graph_id} is not part of shard "
                f"{self.shard_index}/{self.num_shards}"
            ) from exc

    def graph_ids(self) -> List[int]:
        """The global graph ids covered by this shard (in id order)."""
        return [entry.graph_id for entry in self._entries]

    def __repr__(self) -> str:
        return f"<GraphDatabaseShard {self.name!r} |D|={len(self)}>"
