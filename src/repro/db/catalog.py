"""Database catalog: per-database summary statistics (Table III rows).

The catalog condenses a :class:`~repro.db.database.GraphDatabase` (plus its
query workload) into the statistics the paper reports in Table III: number
of database graphs, number of query graphs, maximal vertex/edge counts,
average degree, and a scale-free flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.db.database import GraphDatabase
from repro.graphs.graph import Graph
from repro.graphs.validation import collection_statistics, looks_scale_free

__all__ = ["DatabaseCatalog"]


@dataclass(frozen=True)
class DatabaseCatalog:
    """One row of Table III."""

    name: str
    num_database_graphs: int
    num_query_graphs: int
    max_vertices: int
    max_edges: int
    average_degree: float
    scale_free: bool
    num_vertex_labels: int
    num_edge_labels: int

    @classmethod
    def from_database(
        cls,
        database: GraphDatabase,
        queries: Optional[Sequence[Graph]] = None,
        *,
        scale_free: Optional[bool] = None,
    ) -> "DatabaseCatalog":
        """Build the catalog from a database and its query workload.

        ``scale_free`` may be forced by the caller (the synthetic generators
        know their own regime); when omitted it is estimated from the pooled
        degree distribution.
        """
        graphs = database.graphs()
        stats = collection_statistics(graphs)
        flag = looks_scale_free(graphs) if scale_free is None else scale_free
        return cls(
            name=database.name,
            num_database_graphs=len(database),
            num_query_graphs=len(queries or ()),
            max_vertices=stats.max_vertices,
            max_edges=stats.max_edges,
            average_degree=round(stats.average_degree, 2),
            scale_free=flag,
            num_vertex_labels=stats.num_vertex_labels,
            num_edge_labels=stats.num_edge_labels,
        )

    def as_row(self) -> dict:
        """Return the catalog as a dictionary matching Table III's columns."""
        return {
            "Data Set": self.name,
            "|D|": self.num_database_graphs,
            "|Q|": self.num_query_graphs,
            "Vm": self.max_vertices,
            "Em": self.max_edges,
            "d": self.average_degree,
            "Scale-free": "Yes" if self.scale_free else "No",
        }
