"""Compiled (C, via ctypes) kernel backend for the columnar store.

The bundled ``_kernels.c`` is compiled on demand with the system C compiler
(``cc``/``gcc``/``clang`` — no third-party build dependency) into a per-user
cache directory keyed by the source hash, then loaded through :mod:`ctypes`.
Every wrapper returns bit-identical results to its
:mod:`repro.db.kernels.numpy_impl` twin; inputs whose CSR arrays are not in
the compact int32 layout (a store that outgrew int32) are transparently
delegated to the numpy backend rather than widening the C surface.

The compiled calls release the GIL for their whole duration (plain ctypes
foreign calls), so thread-mode serving executors scale better on this
backend than on the numpy one.

Pointer arguments are declared ``void *`` and passed as plain addresses:
extracting ``array.ctypes.data_as(...)`` costs ~2µs per array in ctypes
machinery, which at a dozen arrays per fused call would rival the kernel
itself.  Addresses of snapshot-stable arrays (the CSR triple, the block and
partition indexes) are therefore identity-cached via :func:`_pinned` — the
cache holds a strong reference to each keyed array, so a cached address can
never dangle or alias a recycled ``id``.

Build products land in ``$REPRO_KERNEL_CACHE`` when set, else
``$TMPDIR/repro-kernels-<uid>``; a failed build is recorded once and surfaces
through :func:`available` / :func:`load_error`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.db.kernels import numpy_impl

name = "native"

_SOURCE_PATH = Path(__file__).with_name("_kernels.c")
_ABI_VERSION = 1

#: argtypes of every exported kernel (i=int64 scalar, p=array address)
_SIGNATURES = {
    "repro_kernels_abi_version": "",
    "repro_gather_postings": "pppppipp",
    "repro_intersection_row": "pppppip",
    "repro_intersection_matrix": "ppppppiip",
    "repro_intersection_subrow": "pppppipip",
    "repro_intersection_submatrix": "ppppppipip",
    "repro_intersection_for_orders": "ppiippppipipip",
    "repro_intersection_matrix_for_orders": "ppiipppipppipip",
    "repro_gbd_lower_bound_row": "iipip",
    "repro_gbd_lower_bound_matrix": "ppipip",
    "repro_filter_verify_row": "iipppippippiippppippp",
}
_ARG_KINDS = {"i": ctypes.c_int64, "p": ctypes.c_void_p}

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None
_attempted = False

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _find_compiler() -> Optional[str]:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _build_and_load() -> ctypes.CDLL:
    source = _SOURCE_PATH.read_bytes()
    tag = hashlib.sha256(
        source + f"|{platform.system()}|{platform.machine()}|{_ABI_VERSION}".encode()
    ).hexdigest()[:16]
    library_path = _cache_dir() / f"repro_kernels_{tag}.so"
    if not library_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler found (tried cc, gcc, clang)")
        library_path.parent.mkdir(parents=True, exist_ok=True)
        scratch = library_path.with_suffix(f".build-{os.getpid()}.so")
        command = [
            compiler,
            "-O3",
            "-std=c99",
            "-fPIC",
            "-shared",
            str(_SOURCE_PATH),
            "-o",
            str(scratch),
        ]
        result = subprocess.run(command, capture_output=True, text=True, timeout=300)
        if result.returncode != 0:
            raise RuntimeError(
                f"kernel build failed ({' '.join(command)}): {result.stderr.strip()}"
            )
        os.replace(scratch, library_path)  # atomic publish against racing builders
    library = ctypes.CDLL(str(library_path))
    for symbol, signature in _SIGNATURES.items():
        function = getattr(library, symbol)
        function.argtypes = [_ARG_KINDS[kind] for kind in signature]
        function.restype = ctypes.c_int64
    if library.repro_kernels_abi_version() != _ABI_VERSION:
        raise RuntimeError("stale kernel library: ABI version mismatch")
    return library


def _library() -> ctypes.CDLL:
    """Build/load the shared library once; raise with the recorded error after."""
    global _lib, _load_error, _attempted
    if _lib is not None:
        return _lib
    with _lock:
        if _lib is not None:
            return _lib
        if _attempted:
            raise RuntimeError(f"native kernels unavailable: {_load_error}")
        _attempted = True
        try:
            _lib = _build_and_load()
        except Exception as exc:  # noqa: BLE001 - recorded and surfaced to callers
            _load_error = str(exc)
            raise RuntimeError(f"native kernels unavailable: {exc}") from exc
    return _lib


def available() -> bool:
    """Whether the compiled library can be (or already was) built and loaded."""
    try:
        _library()
    except Exception:  # noqa: BLE001
        return False
    return True


def load_error() -> Optional[str]:
    """The recorded build/load failure, if the library is unavailable."""
    return _load_error


#: id(array) -> (keyed array, contiguous twin, address).  Entries strongly
#: reference the keyed array, so its id cannot be recycled while cached and
#: the address cannot dangle.  Snapshot arrays change only on compaction;
#: the occasional wholesale clear just re-primes a handful of entries.
_PTR_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}


def _pinned(array: np.ndarray, dtype) -> int:
    """Cached address of a snapshot-stable array (contiguous, ``dtype``)."""
    key = id(array)
    entry = _PTR_CACHE.get(key)
    if entry is None or entry[0] is not array:
        if len(_PTR_CACHE) > 512:
            _PTR_CACHE.clear()
        contiguous = np.ascontiguousarray(array, dtype=dtype)
        entry = (array, contiguous, contiguous.ctypes.data)
        _PTR_CACHE[key] = entry
    return entry[2]


def _c64(array: np.ndarray) -> np.ndarray:
    # No-op for the common case (already contiguous int64); copies strided
    # or mistyped caller arrays instead of reading garbage.  The caller must
    # hold the returned array until after the foreign call — addresses are
    # extracted with ``.ctypes.data``, which does not pin the array.
    return np.ascontiguousarray(array, dtype=np.int64)


def _compact_csr(csr) -> Optional[Tuple[int, int, int]]:
    """Pinned (offsets, positions, counts) addresses iff in the int32 layout."""
    offsets, positions, counts, _rows = csr
    if positions.dtype != np.int32 or counts.dtype != np.int32:
        return None  # store outgrew int32 — numpy backend handles the wide layout
    return (
        _pinned(offsets, np.int64),
        _pinned(positions, np.int32),
        _pinned(counts, np.int32),
    )


def gather_postings(csr, key_ids, query_counts):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.gather_postings(csr, key_ids, query_counts)
    offsets = csr[0]
    lengths = offsets[key_ids + 1] - offsets[key_ids]
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY_I64, _EMPTY_I64
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    out_cols = np.empty(total, dtype=np.int64)
    out_values = np.empty(total, dtype=np.int64)
    _library().repro_gather_postings(
        *compact,
        keys.ctypes.data, counts_q.ctypes.data, len(keys),
        out_cols.ctypes.data, out_values.ctypes.data,
    )
    return out_cols, out_values


def intersection_row(csr, key_ids, query_counts, num_graphs):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_row(csr, key_ids, query_counts, num_graphs)
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    out = np.zeros(num_graphs, dtype=np.int64)
    _library().repro_intersection_row(
        *compact, keys.ctypes.data, counts_q.ctypes.data, len(keys), out.ctypes.data,
    )
    return out


def intersection_matrix(csr, row_ids, key_ids, query_counts, num_queries, num_graphs):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_matrix(
            csr, row_ids, key_ids, query_counts, num_queries, num_graphs
        )
    rows = _c64(row_ids)
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    out = np.zeros((num_queries, num_graphs), dtype=np.int64)
    _library().repro_intersection_matrix(
        *compact,
        rows.ctypes.data, keys.ctypes.data, counts_q.ctypes.data,
        len(keys), num_graphs, out.ctypes.data,
    )
    return out


def intersection_subrow(csr, composite_fn, key_ids, query_counts, sub_positions):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_subrow(
            csr, composite_fn, key_ids, query_counts, sub_positions
        )
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    subs = _c64(sub_positions)
    out = np.zeros(len(subs), dtype=np.int64)
    _library().repro_intersection_subrow(
        *compact,
        keys.ctypes.data, counts_q.ctypes.data, len(keys),
        subs.ctypes.data, len(subs), out.ctypes.data,
    )
    return out


def intersection_submatrix(csr, row_ids, key_ids, query_counts, num_queries, sub_positions):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_submatrix(
            csr, row_ids, key_ids, query_counts, num_queries, sub_positions
        )
    rows = _c64(row_ids)
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    subs = _c64(sub_positions)
    out = np.zeros((num_queries, len(subs)), dtype=np.int64)
    _library().repro_intersection_submatrix(
        *compact,
        rows.ctypes.data, keys.ctypes.data, counts_q.ctypes.data, len(keys),
        subs.ctypes.data, len(subs), out.ctypes.data,
    )
    return out


def intersection_for_orders(csr, blocks, key_ids, query_counts, order_values, sub_positions):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_for_orders(
            csr, blocks, key_ids, query_counts, order_values, sub_positions
        )
    _offsets_ptr, positions_ptr, counts_ptr = compact
    codes_sorted, permutation, stride = blocks
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    values = _c64(order_values)
    subs = _c64(sub_positions)
    out = np.zeros(len(subs), dtype=np.int64)
    _library().repro_intersection_for_orders(
        _pinned(codes_sorted, np.int64), _pinned(permutation, np.int64),
        len(codes_sorted), stride,
        positions_ptr, counts_ptr,
        keys.ctypes.data, counts_q.ctypes.data, len(keys),
        values.ctypes.data, len(values),
        subs.ctypes.data, len(subs), out.ctypes.data,
    )
    return out


def intersection_matrix_for_orders(
    csr, blocks, key_offsets, key_ids, query_counts, order_values, sub_positions
):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.intersection_matrix_for_orders(
            csr, blocks, key_offsets, key_ids, query_counts, order_values, sub_positions
        )
    _offsets_ptr, positions_ptr, counts_ptr = compact
    codes_sorted, permutation, stride = blocks
    offsets_q = _c64(key_offsets)
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    values = _c64(order_values)
    subs = _c64(sub_positions)
    num_queries = len(key_offsets) - 1
    out = np.zeros((num_queries, len(subs)), dtype=np.int64)
    _library().repro_intersection_matrix_for_orders(
        _pinned(codes_sorted, np.int64), _pinned(permutation, np.int64),
        len(codes_sorted), stride,
        positions_ptr, counts_ptr,
        offsets_q.ctypes.data, num_queries, keys.ctypes.data, counts_q.ctypes.data,
        values.ctypes.data, len(values),
        subs.ctypes.data, len(subs), out.ctypes.data,
    )
    return out


def gbd_lower_bound_row(num_query_vertices, matched_total, orders):
    out = np.empty(len(orders), dtype=np.int64)
    _library().repro_gbd_lower_bound_row(
        int(num_query_vertices), int(matched_total),
        _pinned(orders, np.int64), len(orders), out.ctypes.data,
    )
    return out


def gbd_lower_bound_matrix(vertices, totals, orders):
    verts = _c64(vertices)
    tots = _c64(totals)
    out = np.empty((len(verts), len(orders)), dtype=np.int64)
    _library().repro_gbd_lower_bound_matrix(
        verts.ctypes.data, tots.ctypes.data, len(verts),
        _pinned(orders, np.int64), len(orders), out.ctypes.data,
    )
    return out


def filter_verify_row(
    csr,
    blocks,
    partition,
    num_query_vertices,
    matched_total,
    key_ids,
    query_counts,
    thresholds,
    max_candidates,
):
    compact = _compact_csr(csr)
    if compact is None:
        return numpy_impl.filter_verify_row(
            csr, blocks, partition, num_query_vertices, matched_total,
            key_ids, query_counts, thresholds, max_candidates,
        )
    _offsets_ptr, positions_ptr, counts_ptr = compact
    codes_sorted, permutation, stride = blocks
    distinct, row_order, starts, ends = partition
    keys = _c64(key_ids)
    counts_q = _c64(query_counts)
    # The execution core reuses one thresholds array per repeated query
    # shape, so its address is worth caching alongside the snapshot arrays.
    bars_ptr = _pinned(thresholds, np.int64)
    capacity = max(int(max_candidates), 0)
    eligible_flags = np.empty(len(distinct), dtype=np.uint8)
    out_positions = np.empty(capacity, dtype=np.int64)
    out_intersections = np.empty(capacity, dtype=np.int64)
    num_eligible = int(
        _library().repro_filter_verify_row(
            int(num_query_vertices), int(matched_total),
            _pinned(distinct, np.int64), _pinned(starts, np.int64),
            _pinned(ends, np.int64), len(distinct),
            _pinned(row_order, np.int64), bars_ptr, capacity,
            _pinned(codes_sorted, np.int64), _pinned(permutation, np.int64),
            len(codes_sorted), stride,
            positions_ptr, counts_ptr,
            keys.ctypes.data, counts_q.ctypes.data, len(keys),
            out_positions.ctypes.data, out_intersections.ctypes.data,
            eligible_flags.ctypes.data,
        )
    )
    if num_eligible < 0:  # allocation failure inside the kernel
        return numpy_impl.filter_verify_row(
            csr, blocks, partition, num_query_vertices, matched_total,
            key_ids, query_counts, thresholds, max_candidates,
        )
    eligible = eligible_flags.view(np.bool_)
    if num_eligible == 0:
        return _EMPTY_I64, _EMPTY_I64, eligible, 0
    if num_eligible > capacity:
        return None, None, eligible, num_eligible
    return out_positions[:num_eligible], out_intersections[:num_eligible], eligible, num_eligible
