"""Kernel backend registry for the columnar branch-postings hot path.

Two interchangeable backends implement the CSR kernel interface documented
in :mod:`repro.db.kernels.numpy_impl`:

* ``"numpy"`` — the pure-NumPy reference implementation (always available);
* ``"native"`` — the bundled C kernels (:mod:`repro.db.kernels.native`),
  compiled on demand with the system toolchain and called through ctypes.
  Single-pass and fused, so pruned candidates never allocate intermediates.

``"auto"`` (the default everywhere a backend is configurable) resolves to
``native`` when it can be built on this machine and ``numpy`` otherwise, so
the compiled path is an optimisation, never a dependency.  The
``REPRO_KERNEL_BACKEND`` environment variable overrides what ``auto``
resolves to (explicitly configured names always win over the environment);
setting it to ``native`` makes an unbuildable backend a hard error — the CI
leg that pins the native backend wants build breakage loud, not a silent
numpy fallback.

Both backends are bit-identical by contract; the hypothesis parity suite
drives every online path under each.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

from repro.db.kernels import numpy_impl

__all__ = [
    "available_backends",
    "backend_module",
    "native_available",
    "native_load_error",
    "resolve_backend",
]

KNOWN_BACKENDS = ("auto", "numpy", "native")

#: Resolved backend name -> module.  Stores hold only the *name* (modules are
#: not picklable — stores travel into pool workers), so this lookup sits on
#: the kernel-call path and must stay a plain dict probe.
_MODULES = {"numpy": numpy_impl}


def native_available() -> bool:
    """Whether the compiled backend can be built and loaded on this machine."""
    from repro.db.kernels import native

    return native.available()


def native_load_error() -> Optional[str]:
    """Why the compiled backend is unavailable (``None`` when it loads)."""
    from repro.db.kernels import native

    native.available()
    return native.load_error()


def available_backends() -> Tuple[str, ...]:
    """The concrete backend names usable right now (``"auto"`` excluded)."""
    return ("numpy", "native") if native_available() else ("numpy",)


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a configured backend name to a concrete one.

    ``auto`` honours ``REPRO_KERNEL_BACKEND`` when set, else prefers
    ``native`` when buildable.  An explicit (or environment-pinned)
    ``native`` raises with the recorded build error when unavailable.
    """
    requested = str(backend or "auto").strip().lower()
    if requested == "auto":
        env = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
        if env and env != "auto":
            requested = env
        else:
            return "native" if native_available() else "numpy"
    if requested == "numpy":
        return "numpy"
    if requested == "native":
        if not native_available():
            raise RuntimeError(
                f"kernel backend 'native' is unavailable: {native_load_error()}"
            )
        return "native"
    raise ValueError(
        f"unknown kernel backend {requested!r}; expected one of {KNOWN_BACKENDS}"
    )


def backend_module(name: str):
    """The kernel module of a resolved backend name.

    A ``"native"`` name that cannot load *here* (e.g. a snapshot restored on
    a machine without a compiler) degrades to the numpy backend with a
    warning instead of failing the query path.
    """
    module = _MODULES.get(name)
    if module is None:
        if name != "native":
            raise ValueError(
                f"unknown kernel backend {name!r}; expected one of {KNOWN_BACKENDS}"
            )
        from repro.db.kernels import native

        if native.available():
            module = native
        else:
            warnings.warn(
                "native kernel backend unavailable on this machine "
                f"({native.load_error()}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            module = numpy_impl
        _MODULES[name] = module
    return module
