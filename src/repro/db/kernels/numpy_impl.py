"""Pure-NumPy kernel backend for the columnar (CSR) branch-postings store.

This module is the behaviour-defining reference implementation of the kernel
backend interface: every function is a stateless array transform over one CSR
snapshot plus the pre-matched query arrays the store's vocabulary pass
produced.  The compiled backend (:mod:`repro.db.kernels.native`) must return
bit-identical results for every function here; the hypothesis parity suite
drives both against the scalar reference loop.

Interface conventions shared by all backends:

* ``csr`` is the store's ``(offsets, positions, counts, rows_covered)``
  snapshot tuple.  ``offsets`` is int64; ``positions``/``counts`` are int32
  under the compact layout (int64 once the store outgrows it — this backend
  is dtype-agnostic, the native backend falls back to this one).
* ``key_ids``/``query_counts`` are parallel int64 arrays of the query's
  *matched* branch keys (possibly empty, never ``None``).
* ``blocks`` is the snapshot's ``(sorted codes, permutation, stride)``
  (key, row-order) block index; ``composite_fn`` lazily yields the
  ``(composite codes, stride)`` flat probe index — lazy because only this
  backend needs it.
* ``partition`` is ``(distinct orders, row_order, starts, ends)``: rows
  grouped by ``|V_G|``, each group's slice of ``row_order`` ascending.
* Outputs are always int64; weighted ``bincount`` sums are exact small
  integers, so the float64 round-trip is lossless.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

name = "numpy"

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _gather_segments(
    csr, key_ids: np.ndarray, query_counts: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Materialise the matched CSR segments: ``(flat slots, cols, values)``.

    One range-concatenation gather — repeat each segment start and add the
    within-segment offset ``0..length-1`` — with no Python-level loop.
    """
    offsets, all_positions, all_counts, _rows = csr
    starts = offsets[key_ids]
    lengths = offsets[key_ids + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return None
    ends = np.cumsum(lengths)
    flat = np.repeat(starts - (ends - lengths), lengths) + np.arange(total, dtype=np.int64)
    cols = all_positions[flat]
    values = np.minimum(np.repeat(query_counts, lengths), all_counts[flat])
    return flat, cols, values


def gather_postings(
    csr, key_ids: np.ndarray, query_counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Postings gather of one query: ``(cols, values)`` int64 arrays."""
    gathered = _gather_segments(csr, key_ids, query_counts)
    if gathered is None:
        return _EMPTY_I64, _EMPTY_I64
    _flat, cols, values = gathered
    return cols.astype(np.int64, copy=False), values.astype(np.int64, copy=False)


def intersection_row(
    csr, key_ids: np.ndarray, query_counts: np.ndarray, num_graphs: int
) -> np.ndarray:
    """``|B_Q ∩ B_G|`` for every row: one gather plus one bincount scatter-add."""
    gathered = _gather_segments(csr, key_ids, query_counts)
    if gathered is None:
        return np.zeros(num_graphs, dtype=np.int64)
    _flat, cols, values = gathered
    return np.bincount(cols, weights=values, minlength=num_graphs).astype(np.int64)


def intersection_matrix(
    csr,
    row_ids: np.ndarray,
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    num_queries: int,
    num_graphs: int,
) -> np.ndarray:
    """``(Q, D)`` intersection matrix of a batch (``row_ids`` sorted ascending)."""
    out_shape = (num_queries, num_graphs)
    gathered = _gather_segments(csr, key_ids, query_counts)
    if gathered is None:
        return np.zeros(out_shape, dtype=np.int64)
    _flat, cols, values = gathered
    offsets = csr[0]
    lengths = offsets[key_ids + 1] - offsets[key_ids]
    rows = np.repeat(row_ids, lengths)
    boundaries = np.searchsorted(rows, np.arange(num_queries + 1, dtype=np.int64))
    out = np.zeros(out_shape, dtype=np.float64)
    for row in range(num_queries):
        start, end = boundaries[row], boundaries[row + 1]
        if start == end:
            continue
        out[row] = np.bincount(
            cols[start:end], weights=values[start:end], minlength=num_graphs
        )
    return out.astype(np.int64)


def intersection_subrow(
    csr,
    composite_fn: Callable[[], Tuple[np.ndarray, int]],
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    positions: np.ndarray,
) -> np.ndarray:
    """``|B_Q ∩ B_G|`` for a sorted row subset via composite-code probes."""
    _offsets, _all_positions, all_counts, _rows = csr
    num_positions = len(positions)
    out = np.zeros(num_positions, dtype=np.int64)
    order = np.argsort(key_ids, kind="stable")
    key_ids = key_ids[order]
    query_counts = query_counts[order]
    composite, stride = composite_fn()
    probes = (key_ids[:, None] * stride + positions[None, :]).ravel()
    slots = np.searchsorted(composite, probes)
    slots_clipped = np.minimum(slots, len(composite) - 1)
    hits = composite[slots_clipped] == probes
    if not hits.any():
        return out
    counts = all_counts[slots_clipped[hits]]
    capped = np.minimum(np.repeat(query_counts, num_positions)[hits], counts)
    columns = np.tile(np.arange(num_positions, dtype=np.int64), len(key_ids))[hits]
    return np.bincount(columns, weights=capped, minlength=num_positions).astype(np.int64)


def intersection_submatrix(
    csr,
    row_ids: np.ndarray,
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    num_queries: int,
    positions: np.ndarray,
) -> np.ndarray:
    """``(Q, E)`` intersection matrix restricted to sorted row ``positions``."""
    num_positions = len(positions)
    out_shape = (num_queries, num_positions)
    gathered = _gather_segments(csr, key_ids, query_counts)
    if gathered is None:
        return np.zeros(out_shape, dtype=np.int64)
    _flat, cols, values = gathered
    offsets = csr[0]
    lengths = offsets[key_ids + 1] - offsets[key_ids]
    rows = np.repeat(row_ids, lengths)
    slots = np.searchsorted(positions, cols)
    slots_clipped = np.minimum(slots, num_positions - 1)
    member = positions[slots_clipped] == cols
    rows = rows[member]
    compact = slots_clipped[member]
    values = values[member]
    boundaries = np.searchsorted(rows, np.arange(num_queries + 1, dtype=np.int64))
    dense = np.zeros(out_shape, dtype=np.float64)
    for row in range(num_queries):
        start, end = boundaries[row], boundaries[row + 1]
        if start == end:
            continue
        dense[row] = np.bincount(
            compact[start:end], weights=values[start:end], minlength=num_positions
        )
    return dense.astype(np.int64)


def intersection_for_orders(
    csr,
    blocks: Tuple[np.ndarray, np.ndarray, int],
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    order_values: np.ndarray,
    positions: np.ndarray,
) -> np.ndarray:
    """``|B_Q ∩ B_G|`` over the rows of the given orders via block probes.

    Each (query key, eligible order) pair is one contiguous block of the
    snapshot's block index — only postings of surviving rows are gathered.
    """
    _offsets, all_positions, all_counts, _rows = csr
    num_positions = len(positions)
    out = np.zeros(num_positions, dtype=np.int64)
    codes_sorted, permutation, stride = blocks
    probe_codes = (key_ids[:, None] * stride + order_values[None, :]).ravel()
    starts = np.searchsorted(codes_sorted, probe_codes, side="left")
    ends = np.searchsorted(codes_sorted, probe_codes, side="right")
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return out
    block_ends = np.cumsum(lengths)
    flat = np.repeat(starts - (block_ends - lengths), lengths) + np.arange(
        total, dtype=np.int64
    )
    posting_slots = permutation[flat]
    rows = all_positions[posting_slots]
    counts = all_counts[posting_slots]
    capped = np.minimum(
        np.repeat(np.repeat(query_counts, len(order_values)), lengths), counts
    )
    columns = np.searchsorted(positions, rows)
    return np.bincount(columns, weights=capped, minlength=num_positions).astype(np.int64)


def intersection_matrix_for_orders(
    csr,
    blocks: Tuple[np.ndarray, np.ndarray, int],
    key_offsets: np.ndarray,
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    order_values: np.ndarray,
    positions: np.ndarray,
) -> np.ndarray:
    """``(G, E)`` block-probe intersections of a query group.

    ``key_offsets[g]..key_offsets[g+1]`` delimits query ``g``'s slice of
    ``key_ids``/``query_counts``.
    """
    num_queries = len(key_offsets) - 1
    out = np.zeros((num_queries, len(positions)), dtype=np.int64)
    for g in range(num_queries):
        lo, hi = int(key_offsets[g]), int(key_offsets[g + 1])
        if lo == hi:
            continue
        out[g] = intersection_for_orders(
            csr, blocks, key_ids[lo:hi], query_counts[lo:hi], order_values, positions
        )
    return out


def gbd_lower_bound_row(
    num_query_vertices: int, matched_total: int, orders: np.ndarray
) -> np.ndarray:
    """``max(|V_Q|, |V_G|) - min(matched_total, |V_G|)`` per row."""
    return np.maximum(int(num_query_vertices), orders) - np.minimum(
        int(matched_total), orders
    )


def gbd_lower_bound_matrix(
    vertices: np.ndarray, totals: np.ndarray, orders: np.ndarray
) -> np.ndarray:
    """Batched ``(Q, D)`` form of :func:`gbd_lower_bound_row`."""
    return np.maximum(vertices[:, None], orders[None, :]) - np.minimum(
        totals[:, None], orders[None, :]
    )


def filter_verify_row(
    csr,
    blocks: Tuple[np.ndarray, np.ndarray, int],
    partition: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    num_query_vertices: int,
    matched_total: int,
    key_ids: np.ndarray,
    query_counts: np.ndarray,
    thresholds: np.ndarray,
    max_candidates: int,
):
    """Fused single-query filter-and-verify (see the native twin for the contract).

    Returns ``(positions, intersections, eligible, num_eligible)`` where
    ``eligible`` is the per-distinct-order bool mask.  ``positions`` and
    ``intersections`` are ``None`` when ``num_eligible`` exceeds
    ``max_candidates`` (the caller's dense-plan bar) and empty when no order
    survives; otherwise they cover exactly the surviving rows, sorted.
    """
    distinct, row_order, starts, ends = partition
    lower_bounds = np.maximum(int(num_query_vertices), distinct) - np.minimum(
        int(matched_total), distinct
    )
    eligible = lower_bounds <= thresholds
    num_eligible = int((ends - starts)[eligible].sum())
    if num_eligible == 0:
        return _EMPTY_I64, _EMPTY_I64, eligible, 0
    if num_eligible > max_candidates:
        return None, None, eligible, num_eligible
    slots = np.flatnonzero(eligible)
    if len(slots) == len(distinct):
        positions = np.arange(len(row_order), dtype=np.int64)
    else:
        positions = np.concatenate(
            [row_order[starts[slot] : ends[slot]] for slot in slots.tolist()]
        )
        positions.sort()
    intersections = intersection_for_orders(
        csr, blocks, key_ids, query_counts, distinct[eligible], positions
    )
    return positions, intersections, eligible, num_eligible
