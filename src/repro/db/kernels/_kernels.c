/* Compiled kernels for the columnar (CSR) branch-postings hot path.
 *
 * Compiled on demand by repro/db/kernels/native.py with the system C
 * compiler and loaded through ctypes; repro/db/kernels/numpy_impl.py is the
 * behaviour-defining reference implementation.  Every function here must
 * return bit-identical results to its numpy twin — the hypothesis parity
 * suite (tests/test_execution_parity.py) drives both backends against the
 * scalar reference loop.
 *
 * Data layout contract (enforced by the ctypes wrappers):
 *   - CSR ``offsets`` are int64, one slot per branch key plus a sentinel.
 *   - CSR ``positions`` (row of each posting) and ``counts`` (multiplicity)
 *     are int32 — the compact layout ColumnarBranchStore.compact() emits
 *     unless the store outgrows int32, in which case the wrappers fall back
 *     to the numpy backend instead of calling in here.
 *   - Everything else (key ids, query counts, orders, block codes,
 *     permutations, outputs) is int64.
 *   - Output buffers are caller-allocated; intersection outputs must be
 *     zero-initialised unless noted otherwise.
 *   - Within one key's CSR segment the postings are sorted by row position
 *     and rows are unique; ``sub_positions`` arguments are sorted ascending.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define MIN64(a, b) ((a) < (b) ? (a) : (b))
#define MAX64(a, b) ((a) > (b) ? (a) : (b))

int64_t repro_kernels_abi_version(void) { return 1; }

/* First slot in arr[0..n) not less than value (arr ascending). */
static int64_t lower_bound_i64(const int64_t *arr, int64_t n, int64_t value) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (arr[mid] < value) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

static int64_t lower_bound_i32(const int32_t *arr, int64_t n, int32_t value) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (arr[mid] < value) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

/* ------------------------------------------------------------------ *
 * postings gather and dense intersection kernels
 * ------------------------------------------------------------------ */

/* Materialise the matched postings of one query: for each matched key,
 * its CSR segment's rows into out_cols and min(query count, count) into
 * out_values.  The caller sizes the outputs from the segment lengths. */
void repro_gather_postings(const int64_t *offsets, const int32_t *positions,
                           const int32_t *counts, const int64_t *key_ids,
                           const int64_t *query_counts, int64_t num_keys,
                           int64_t *out_cols, int64_t *out_values) {
    int64_t cursor = 0;
    for (int64_t ki = 0; ki < num_keys; ++ki) {
        int64_t qc = query_counts[ki];
        int64_t start = offsets[key_ids[ki]];
        int64_t end = offsets[key_ids[ki] + 1];
        for (int64_t s = start; s < end; ++s) {
            out_cols[cursor] = positions[s];
            out_values[cursor++] = MIN64(qc, (int64_t)counts[s]);
        }
    }
}

/* |B_Q ∩ B_G| for every row: direct scatter-add over the matched keys'
 * CSR segments into the zeroed dense output. */
void repro_intersection_row(const int64_t *offsets, const int32_t *positions,
                            const int32_t *counts, const int64_t *key_ids,
                            const int64_t *query_counts, int64_t num_keys,
                            int64_t *out) {
    for (int64_t ki = 0; ki < num_keys; ++ki) {
        int64_t qc = query_counts[ki];
        int64_t start = offsets[key_ids[ki]];
        int64_t end = offsets[key_ids[ki] + 1];
        for (int64_t s = start; s < end; ++s) {
            out[positions[s]] += MIN64(qc, (int64_t)counts[s]);
        }
    }
}

/* Batched form: one (query row, key) pair per element of row_ids/key_ids/
 * query_counts, scattered into the zeroed (num_queries, num_graphs) output. */
void repro_intersection_matrix(const int64_t *offsets, const int32_t *positions,
                               const int32_t *counts, const int64_t *row_ids,
                               const int64_t *key_ids, const int64_t *query_counts,
                               int64_t num_pairs, int64_t num_graphs, int64_t *out) {
    for (int64_t p = 0; p < num_pairs; ++p) {
        int64_t *row = out + row_ids[p] * num_graphs;
        int64_t qc = query_counts[p];
        int64_t start = offsets[key_ids[p]];
        int64_t end = offsets[key_ids[p] + 1];
        for (int64_t s = start; s < end; ++s) {
            row[positions[s]] += MIN64(qc, (int64_t)counts[s]);
        }
    }
}

/* ------------------------------------------------------------------ *
 * position-restricted (sparse) intersections
 * ------------------------------------------------------------------ */

/* Add one key segment's contribution restricted to sub_positions into one
 * output row.  Adaptive: walk whichever side is shorter and binary-search
 * the other — min(seg log E, E log seg) instead of a full gather. */
static void segment_into_subrow(const int32_t *positions, const int32_t *counts,
                                int64_t start, int64_t end, int64_t qc,
                                const int64_t *sub_positions, int64_t num_sub,
                                int64_t *out) {
    int64_t seg = end - start;
    if (seg <= num_sub) {
        for (int64_t s = start; s < end; ++s) {
            int64_t row = positions[s];
            int64_t slot = lower_bound_i64(sub_positions, num_sub, row);
            if (slot < num_sub && sub_positions[slot] == row) {
                out[slot] += MIN64(qc, (int64_t)counts[s]);
            }
        }
    } else {
        for (int64_t e = 0; e < num_sub; ++e) {
            int32_t row = (int32_t)sub_positions[e];
            int64_t slot = start + lower_bound_i32(positions + start, seg, row);
            if (slot < end && positions[slot] == row) {
                out[e] += MIN64(qc, (int64_t)counts[slot]);
            }
        }
    }
}

/* |B_Q ∩ B_G| for a sorted subset of rows (zeroed output, length num_sub). */
void repro_intersection_subrow(const int64_t *offsets, const int32_t *positions,
                               const int32_t *counts, const int64_t *key_ids,
                               const int64_t *query_counts, int64_t num_keys,
                               const int64_t *sub_positions, int64_t num_sub,
                               int64_t *out) {
    for (int64_t ki = 0; ki < num_keys; ++ki) {
        segment_into_subrow(positions, counts, offsets[key_ids[ki]],
                            offsets[key_ids[ki] + 1], query_counts[ki],
                            sub_positions, num_sub, out);
    }
}

/* Batched subset intersection into the zeroed (num_queries, num_sub) output. */
void repro_intersection_submatrix(const int64_t *offsets, const int32_t *positions,
                                  const int32_t *counts, const int64_t *row_ids,
                                  const int64_t *key_ids, const int64_t *query_counts,
                                  int64_t num_pairs, const int64_t *sub_positions,
                                  int64_t num_sub, int64_t *out) {
    for (int64_t p = 0; p < num_pairs; ++p) {
        segment_into_subrow(positions, counts, offsets[key_ids[p]],
                            offsets[key_ids[p] + 1], query_counts[p], sub_positions,
                            num_sub, out + row_ids[p] * num_sub);
    }
}

/* ------------------------------------------------------------------ *
 * (key, row-order) block probes — the pruned execution layer's kernels
 * ------------------------------------------------------------------ */

/* Add every posting of the (key, order) blocks of one query into out,
 * where out is indexed by the slot of the posting's row in sub_positions.
 * codes_sorted is the snapshot's block index (key_id * stride + |V_row|,
 * ascending) and permutation maps sorted slots back to posting slots.
 * Rows of the probed orders are members of sub_positions by contract; the
 * membership check only guards against contract violations. */
static void blocks_into_row(const int64_t *codes_sorted, const int64_t *permutation,
                            int64_t num_postings, int64_t stride,
                            const int32_t *positions, const int32_t *counts,
                            const int64_t *key_ids, const int64_t *query_counts,
                            int64_t num_keys, const int64_t *order_values,
                            int64_t num_orders, const int64_t *sub_positions,
                            int64_t num_sub, int64_t *out) {
    for (int64_t ki = 0; ki < num_keys; ++ki) {
        int64_t base = key_ids[ki] * stride;
        int64_t qc = query_counts[ki];
        for (int64_t u = 0; u < num_orders; ++u) {
            int64_t code = base + order_values[u];
            int64_t lo = lower_bound_i64(codes_sorted, num_postings, code);
            for (; lo < num_postings && codes_sorted[lo] == code; ++lo) {
                int64_t slot = permutation[lo];
                int64_t row = positions[slot];
                int64_t col = lower_bound_i64(sub_positions, num_sub, row);
                if (col < num_sub && sub_positions[col] == row) {
                    out[col] += MIN64(qc, (int64_t)counts[slot]);
                }
            }
        }
    }
}

/* |B_Q ∩ B_G| for every row whose order is in order_values (zeroed output). */
void repro_intersection_for_orders(const int64_t *codes_sorted,
                                   const int64_t *permutation, int64_t num_postings,
                                   int64_t stride, const int32_t *positions,
                                   const int32_t *counts, const int64_t *key_ids,
                                   const int64_t *query_counts, int64_t num_keys,
                                   const int64_t *order_values, int64_t num_orders,
                                   const int64_t *sub_positions, int64_t num_sub,
                                   int64_t *out) {
    blocks_into_row(codes_sorted, permutation, num_postings, stride, positions,
                    counts, key_ids, query_counts, num_keys, order_values,
                    num_orders, sub_positions, num_sub, out);
}

/* Batched form over a query group: key_offsets[g]..key_offsets[g+1] delimit
 * query g's slice of key_ids/query_counts; output is the zeroed
 * (num_queries, num_sub) matrix. */
void repro_intersection_matrix_for_orders(
    const int64_t *codes_sorted, const int64_t *permutation, int64_t num_postings,
    int64_t stride, const int32_t *positions, const int32_t *counts,
    const int64_t *key_offsets, int64_t num_queries, const int64_t *key_ids,
    const int64_t *query_counts, const int64_t *order_values, int64_t num_orders,
    const int64_t *sub_positions, int64_t num_sub, int64_t *out) {
    for (int64_t g = 0; g < num_queries; ++g) {
        int64_t lo = key_offsets[g];
        blocks_into_row(codes_sorted, permutation, num_postings, stride, positions,
                        counts, key_ids + lo, query_counts + lo,
                        key_offsets[g + 1] - lo, order_values, num_orders,
                        sub_positions, num_sub, out + g * num_sub);
    }
}

/* ------------------------------------------------------------------ *
 * GBD lower bounds
 * ------------------------------------------------------------------ */

/* GBD(Q, G) >= max(|V_Q|, |V_G|) - min(matched_total, |V_G|) per row. */
void repro_gbd_lower_bound_row(int64_t num_query_vertices, int64_t matched_total,
                               const int64_t *orders, int64_t num_rows,
                               int64_t *out) {
    for (int64_t i = 0; i < num_rows; ++i) {
        int64_t order = orders[i];
        out[i] = MAX64(num_query_vertices, order) - MIN64(matched_total, order);
    }
}

void repro_gbd_lower_bound_matrix(const int64_t *vertices, const int64_t *totals,
                                  int64_t num_queries, const int64_t *orders,
                                  int64_t num_rows, int64_t *out) {
    for (int64_t q = 0; q < num_queries; ++q) {
        repro_gbd_lower_bound_row(vertices[q], totals[q], orders, num_rows,
                                  out + q * num_rows);
    }
}

/* ------------------------------------------------------------------ *
 * fused filter-and-verify
 * ------------------------------------------------------------------ */

/* k-way merge of the eligible orders' ascending row runs. */
typedef struct {
    int64_t value;
    int64_t next;
    int64_t end;
} merge_run;

static void heap_sift_down(merge_run *heap, int64_t size, int64_t i) {
    for (;;) {
        int64_t left = 2 * i + 1;
        int64_t right = left + 1;
        int64_t smallest = i;
        if (left < size && heap[left].value < heap[smallest].value) smallest = left;
        if (right < size && heap[right].value < heap[smallest].value) smallest = right;
        if (smallest == i) break;
        merge_run tmp = heap[i];
        heap[i] = heap[smallest];
        heap[smallest] = tmp;
        i = smallest;
    }
}

/* Single-pass filter-and-verify for one query:
 *   1. per distinct |V_G|, the GBD lower bound is compared against the
 *      caller's max-acceptable-GBD threshold (out_eligible is always
 *      filled; ineligible orders' rows are never touched again);
 *   2. the eligible row count is returned as-is when it is 0 or exceeds
 *      max_candidates (the caller's dense-plan bar) — no per-row work;
 *   3. otherwise the eligible orders' row runs (row_order[starts[u]:ends[u]],
 *      each ascending) are heap-merged into out_positions (sorted), and the
 *      survivors' intersections are accumulated into out_intersections via
 *      the (key, order) block index — postings of pruned rows are never read.
 * Returns the eligible row count, or -1 on allocation failure (the wrapper
 * then falls back to the numpy backend).  out_positions/out_intersections
 * must hold at least max_candidates slots; they are written only when
 * 0 < count <= max_candidates. */
int64_t repro_filter_verify_row(
    int64_t num_query_vertices, int64_t matched_total, const int64_t *distinct,
    const int64_t *starts, const int64_t *ends, int64_t num_distinct,
    const int64_t *row_order, const int64_t *thresholds, int64_t max_candidates,
    const int64_t *codes_sorted, const int64_t *permutation, int64_t num_postings,
    int64_t stride, const int32_t *positions, const int32_t *counts,
    const int64_t *key_ids, const int64_t *query_counts, int64_t num_keys,
    int64_t *out_positions, int64_t *out_intersections, uint8_t *out_eligible) {
    int64_t num_eligible = 0;
    int64_t num_runs = 0;
    for (int64_t u = 0; u < num_distinct; ++u) {
        int64_t order = distinct[u];
        int64_t bound = MAX64(num_query_vertices, order) - MIN64(matched_total, order);
        if (bound <= thresholds[u]) {
            out_eligible[u] = 1;
            num_eligible += ends[u] - starts[u];
            ++num_runs;
        } else {
            out_eligible[u] = 0;
        }
    }
    if (num_eligible == 0 || num_eligible > max_candidates) {
        return num_eligible;
    }

    merge_run *heap = (merge_run *)malloc((size_t)num_runs * sizeof(merge_run));
    if (heap == NULL) {
        return -1;
    }
    int64_t size = 0;
    for (int64_t u = 0; u < num_distinct; ++u) {
        if (out_eligible[u] && starts[u] < ends[u]) {
            heap[size].value = row_order[starts[u]];
            heap[size].next = starts[u] + 1;
            heap[size].end = ends[u];
            ++size;
        }
    }
    for (int64_t i = size / 2 - 1; i >= 0; --i) {
        heap_sift_down(heap, size, i);
    }
    int64_t cursor = 0;
    while (size > 0) {
        out_positions[cursor++] = heap[0].value;
        if (heap[0].next < heap[0].end) {
            heap[0].value = row_order[heap[0].next++];
        } else {
            heap[0] = heap[size - 1];
            --size;
        }
        heap_sift_down(heap, size, 0);
    }
    free(heap);

    memset(out_intersections, 0, (size_t)num_eligible * sizeof(int64_t));
    for (int64_t ki = 0; ki < num_keys; ++ki) {
        int64_t base = key_ids[ki] * stride;
        int64_t qc = query_counts[ki];
        for (int64_t u = 0; u < num_distinct; ++u) {
            if (!out_eligible[u]) continue;
            int64_t code = base + distinct[u];
            int64_t lo = lower_bound_i64(codes_sorted, num_postings, code);
            for (; lo < num_postings && codes_sorted[lo] == code; ++lo) {
                int64_t slot = permutation[lo];
                int64_t row = positions[slot];
                int64_t col = lower_bound_i64(out_positions, num_eligible, row);
                if (col < num_eligible && out_positions[col] == row) {
                    out_intersections[col] += MIN64(qc, (int64_t)counts[slot]);
                }
            }
        }
    }
    return num_eligible;
}
