"""Columnar (CSR) storage of the branch postings of a graph database.

:class:`ColumnarBranchStore` holds the inverted branch postings of a
:class:`~repro.db.database.GraphDatabase` in compressed-sparse-row form:

* a *vocabulary* mapping each canonical branch key to a dense integer id,
* three contiguous arrays — ``offsets`` (one ``int64`` slot per branch key,
  CSR row pointers), ``positions`` (the database rows containing the key),
  and ``counts`` (the key's multiplicity in each of those rows).

``positions``/``counts`` use the **compact int32 layout** whenever the store
fits (fewer than 2³¹ rows and per-row multiplicities): half the memory
bandwidth on the hottest arrays of the online stage.  :meth:`compact`
re-checks the limits on every rebuild and promotes to int64 the moment
either is exceeded — the kernels accept both layouts, so promotion is an
internal dtype change, never an API event.

The kernels themselves live in :mod:`repro.db.kernels` behind a pluggable
``backend`` (``"numpy"`` | ``"native"`` | ``"auto"``): this class owns the
vocabulary pass, the snapshot caches, and the metrics, and dispatches the
array work to the selected backend.  The ``native`` backend additionally
fuses the pruned execution layer's bound-filter → survivor-gather →
verification sequence into one C call (:meth:`filter_verify_row`), so
pruned-out candidates never allocate or touch intermediates.

Incremental additions go through an **append buffer**: :meth:`append` is
``O(|branches|)`` bookkeeping, and the CSR arrays are rebuilt lazily by
:meth:`compact` on the next read.  A bulk load of ``k`` graphs therefore
costs one compaction, not ``k`` (see
:meth:`~repro.db.database.GraphDatabase.add_many`).

Concurrency: queries may run from several threads sharing one engine (the
serving executor's ``"thread"`` mode), so the CSR triple is published as a
single immutable tuple swap behind a compaction lock, and readers operate
on one snapshot for the whole query — a query racing a compaction sees
either the pre-add or post-add postings, never a torn mix.  Mutation
(:meth:`append`) is only ever driven by the database's add-hook and is not
itself thread-safe.

Rows are *positions* ``0..D-1`` in insertion order; :meth:`global_ids` maps
positions back to database graph ids.  For a plain
:class:`~repro.db.database.GraphDatabase` the two coincide; for an
id-preserving shard view (:meth:`GraphDatabase.shard`) they differ, which
is what lets shard stores be scored independently and merged by global id.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.kernels import backend_module, resolve_backend
from repro.obs.metrics import get_registry

__all__ = ["ColumnarBranchStore"]

# Kernel call/row counters (repro.obs): children are bound once per backend
# and cached at module level — the kernels below are the hot path of every
# online query, and children must never live on store instances (stores are
# pickled into pool workers, whose deltas merge back by label set).  Rows
# count the cells each call produced (D for a dense row, Q·D for a matrix, E
# for compacted kernels, U distinct orders for the fused filters), making
# ``rows / calls`` an instant read on how selective the pruned layer is.
_KERNEL_CALLS = get_registry().counter(
    "repro_kernel_calls_total", "Columnar CSR kernel invocations", ("kernel", "backend")
)
_KERNEL_ROWS = get_registry().counter(
    "repro_kernel_rows_total",
    "Result cells produced by columnar CSR kernels",
    ("kernel", "backend"),
)
_BACKEND_INFO = get_registry().gauge(
    "repro_kernel_backend_info",
    "Columnar kernel backends in use by this process (1 per active backend)",
    ("backend",),
)


class _BackendCounters:
    """Pre-bound (calls, rows) counter children of one backend label."""

    __slots__ = (
        "row",
        "matrix",
        "subrow",
        "for_orders",
        "submatrix",
        "bound_row",
        "bound_matrix",
        "filter_verify_row",
        "filter_verify_matrix",
    )

    def __init__(self, backend: str) -> None:
        for kernel in self.__slots__:
            setattr(
                self,
                kernel,
                (
                    _KERNEL_CALLS.labels(kernel=kernel, backend=backend),
                    _KERNEL_ROWS.labels(kernel=kernel, backend=backend),
                ),
            )


_COUNTERS_BY_BACKEND: Dict[str, _BackendCounters] = {}


def _counters(backend: str) -> _BackendCounters:
    counters = _COUNTERS_BY_BACKEND.get(backend)
    if counters is None:
        counters = _COUNTERS_BY_BACKEND[backend] = _BackendCounters(backend)
    return counters


#: The compacted arrays travel together with the number of rows they
#: cover: (offsets, positions, counts, rows_covered).
_Csr = Tuple[np.ndarray, np.ndarray, np.ndarray, int]

#: Largest row index / posting multiplicity representable in the compact
#: int32 layout.  Module-level so the overflow-promotion tests can shrink
#: them; :meth:`ColumnarBranchStore.compact` re-reads them on every rebuild.
_POSITION_DTYPE_LIMIT = int(np.iinfo(np.int32).max)
_COUNT_DTYPE_LIMIT = int(np.iinfo(np.int32).max)

_EMPTY_CSR: _Csr = (
    np.zeros(1, dtype=np.int64),
    np.empty(0, dtype=np.int32),
    np.empty(0, dtype=np.int32),
    0,
)

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class ColumnarBranchStore:
    """CSR branch-key postings with an append buffer and lazy compaction."""

    def __init__(self, entries: Iterable = (), *, backend: str = "auto") -> None:
        #: Resolved kernel backend name (``"numpy"`` or ``"native"``) — the
        #: requested name is resolved once here, so an explicitly requested
        #: but unbuildable ``"native"`` fails at construction, loudly.
        self.backend = resolve_backend(backend)
        _BACKEND_INFO.labels(backend=self.backend).set(1)
        self._key_ids: Dict[Tuple, int] = {}
        self._keys: List[Tuple] = []
        # Per-key norm: the largest multiplicity of the key in any single
        # row.  Monotone under appends, which is what makes the lower-bound
        # kernels race-safe (a cap newer than a CSR snapshot only loosens
        # the bound — see matched_query_total).
        self._key_caps: List[int] = []
        # Per-row metadata, grown on append.
        self._row_global_ids: List[int] = []
        self._row_orders: List[int] = []
        # Compacted CSR arrays, swapped atomically as one tuple.
        self._csr: _Csr = _EMPTY_CSR
        # Append buffer: parallel lists of (key id, row position, count).
        self._pending_keys: List[int] = []
        self._pending_positions: List[int] = []
        self._pending_counts: List[int] = []
        # Caches of the dense per-row / per-key vectors.
        self._global_ids_cache: Optional[np.ndarray] = None
        self._orders_cache: Optional[np.ndarray] = None
        self._caps_cache: Optional[np.ndarray] = None
        # (postings array identity, composite codes) of the last snapshot
        # probed by intersection_subrow — see _composite_for.
        self._composite_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # (postings array identity, (sorted codes, permutation, stride)) of
        # the last snapshot's (key, row-order) block index — see
        # _order_blocks_for.
        self._order_blocks_cache: Optional[Tuple[np.ndarray, Tuple]] = None
        # (postings array identity, (distinct, row_order, starts, ends)) of
        # the last snapshot's rows-grouped-by-order partition — see
        # _order_partition_for.
        self._order_partition_cache: Optional[Tuple[np.ndarray, Tuple]] = None
        self._compact_lock = threading.Lock()
        #: Number of compaction passes performed (bulk-load tests pin this).
        self.num_compactions = 0
        for entry in entries:
            self.append(entry)

    @property
    def _kernels(self):
        """The resolved backend's kernel module (one dict probe — hot path)."""
        return backend_module(self.backend)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_compact_lock"]  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._compact_lock = threading.Lock()
        # A snapshot restored on another machine keeps its configured
        # backend name; backend_module degrades native->numpy with a
        # warning if this host cannot build the library.
        _BACKEND_INFO.labels(backend=self.backend).set(1)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def append(self, entry) -> int:
        """Buffer one :class:`~repro.db.database.StoredGraph`; return its position.

        The CSR arrays are not touched — the entry's postings land in the
        append buffer and are merged on the next :meth:`compact` (triggered
        lazily by any read), so bulk loads pay for one compaction total.
        Runs under the compaction lock so a reader-triggered merge can never
        observe (or discard) a half-written buffer entry.
        """
        with self._compact_lock:
            position = len(self._row_global_ids)
            self._row_global_ids.append(int(entry.graph_id))
            self._row_orders.append(int(entry.num_vertices))
            key_ids = self._key_ids
            caps = self._key_caps
            for key, count in entry.branches.items():
                count = int(count)
                key_id = key_ids.get(key)
                if key_id is None:
                    key_id = len(self._keys)
                    key_ids[key] = key_id
                    self._keys.append(key)
                    caps.append(count)
                elif count > caps[key_id]:
                    caps[key_id] = count
                self._pending_keys.append(key_id)
                self._pending_positions.append(position)
                self._pending_counts.append(count)
            self._global_ids_cache = None
            self._orders_cache = None
            self._caps_cache = None
        return position

    def _is_compacted(self) -> bool:
        """Whether the published CSR already covers every key *and* row.

        Both conditions matter: an appended entry with zero branches grows
        the row count without touching the vocabulary or the buffer, so
        checking the vocabulary alone would leave ``rows_covered`` stale
        forever (and :meth:`view`, which insists on full row coverage,
        spinning).
        """
        return (
            not self._pending_keys
            and len(self._csr[0]) == len(self._keys) + 1
            and self._csr[3] == len(self._row_global_ids)
        )

    def compact(self) -> bool:
        """Merge the append buffer into the CSR arrays; return whether work was done.

        Within each key the postings stay sorted by row position: the old
        segment is copied in order and pending entries (whose positions are
        strictly larger) are placed after it in arrival order.  The merge
        runs under a lock and publishes the rebuilt arrays as one atomic
        tuple swap, so concurrent readers are never exposed to a torn CSR.

        The rebuilt ``positions``/``counts`` use int32 while every row index
        and posting multiplicity fits (:data:`_POSITION_DTYPE_LIMIT` /
        :data:`_COUNT_DTYPE_LIMIT`), promoting to int64 otherwise.  Both
        decisions are value-safe in either direction: positions are bounded
        by the row count and counts by the max per-key cap, which are
        exactly the quantities checked.
        """
        if self._is_compacted():
            return False
        with self._compact_lock:
            num_keys = len(self._keys)
            old_offsets, old_positions, old_counts, _old_rows = self._csr
            if self._is_compacted():
                return False  # another thread compacted while we waited

            old_num_keys = len(old_offsets) - 1
            old_lengths = np.diff(old_offsets)
            lengths = np.zeros(num_keys, dtype=np.int64)
            lengths[:old_num_keys] = old_lengths

            if self._pending_keys:
                pending_keys = np.asarray(self._pending_keys, dtype=np.int64)
                pending_positions = np.asarray(self._pending_positions, dtype=np.int64)
                pending_counts = np.asarray(self._pending_counts, dtype=np.int64)
                lengths += np.bincount(pending_keys, minlength=num_keys)

            num_rows = len(self._row_global_ids)
            position_dtype = np.int32 if num_rows <= _POSITION_DTYPE_LIMIT else np.int64
            max_cap = max(self._key_caps, default=0)
            count_dtype = np.int32 if max_cap <= _COUNT_DTYPE_LIMIT else np.int64
            offsets = np.zeros(num_keys + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            positions = np.empty(int(offsets[-1]), dtype=position_dtype)
            counts = np.empty(int(offsets[-1]), dtype=count_dtype)

            if len(old_positions):
                # Shift every old posting of key k by the room its segment grew.
                shift = np.repeat(offsets[:old_num_keys] - old_offsets[:-1], old_lengths)
                destination = np.arange(len(old_positions), dtype=np.int64) + shift
                positions[destination] = old_positions
                counts[destination] = old_counts

            if self._pending_keys:
                order = np.argsort(pending_keys, kind="stable")
                sorted_keys = pending_keys[order]
                # Rank of each pending posting within its key's block.
                block_starts = np.flatnonzero(
                    np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
                )
                block_lengths = np.diff(np.r_[block_starts, len(sorted_keys)])
                ranks = np.arange(len(sorted_keys), dtype=np.int64) - np.repeat(
                    block_starts, block_lengths
                )
                old_tail = np.zeros(num_keys, dtype=np.int64)
                old_tail[:old_num_keys] = old_lengths
                destination = offsets[sorted_keys] + old_tail[sorted_keys] + ranks
                positions[destination] = pending_positions[order]
                counts[destination] = pending_counts[order]

            self._csr = (offsets, positions, counts, num_rows)
            self._pending_keys = []
            self._pending_positions = []
            self._pending_counts = []
            self.num_compactions += 1
        return True

    def _snapshot(self) -> _Csr:
        """Compact if needed and return one consistent CSR tuple."""
        self.compact()
        return self._csr

    def view(self) -> Tuple[_Csr, np.ndarray, np.ndarray]:
        """Return one coherent ``(csr, orders, global_ids)`` read snapshot.

        The three pieces are captured together (retrying across a racing
        append) so a whole query computes against arrays of one length whose
        every row is covered by the CSR — concurrent additions become
        visible only between queries, never as a torn mix or a graph with
        silently missing postings.
        """
        while True:
            csr = self._snapshot()
            orders = self.orders()
            global_ids = self.global_ids()
            if csr[3] == len(orders) == len(global_ids):
                return csr, orders, global_ids

    # ------------------------------------------------------------------ #
    # shape and per-row vectors
    # ------------------------------------------------------------------ #
    @property
    def num_graphs(self) -> int:
        """Number of rows (database graphs) covered by the store."""
        return len(self._row_global_ids)

    @property
    def num_keys(self) -> int:
        """Number of distinct branch keys in the vocabulary."""
        return len(self._keys)

    @property
    def num_postings(self) -> int:
        """Total postings held (compacted segment plus append buffer)."""
        return len(self._csr[1]) + len(self._pending_keys)

    def global_ids(self) -> np.ndarray:
        """Dense ``position -> graph id`` vector (cached)."""
        if self._global_ids_cache is None or len(self._global_ids_cache) != self.num_graphs:
            self._global_ids_cache = np.asarray(self._row_global_ids, dtype=np.int64)
        return self._global_ids_cache

    def orders(self) -> np.ndarray:
        """Dense ``position -> |V_G|`` vector (cached)."""
        if self._orders_cache is None or len(self._orders_cache) != self.num_graphs:
            self._orders_cache = np.asarray(self._row_orders, dtype=np.int64)
        return self._orders_cache

    def branch_totals(self) -> np.ndarray:
        """Dense ``position -> |B_G|`` vector of total branch counts.

        A graph contributes exactly one branch per vertex (Definition 2), so
        the total branch count of a row equals its vertex count — this is
        the per-graph norm the lower-bound kernels cap intersections with,
        exposed under its own name so the bound math reads as written.
        """
        return self.orders()

    def key_caps(self) -> np.ndarray:
        """Dense ``key id -> max per-row multiplicity`` vector (cached)."""
        if self._caps_cache is None or len(self._caps_cache) != len(self._key_caps):
            self._caps_cache = np.asarray(self._key_caps, dtype=np.int64)
        return self._caps_cache

    # ------------------------------------------------------------------ #
    # postings access
    # ------------------------------------------------------------------ #
    def postings(self, branch_key: Tuple) -> List[Tuple[int, int]]:
        """Return the ``(graph_id, count)`` postings of one branch key."""
        offsets, positions, counts, _rows = self._snapshot()
        key_id = self._key_ids.get(branch_key)
        if key_id is None or key_id >= len(offsets) - 1:
            return []
        start, end = int(offsets[key_id]), int(offsets[key_id + 1])
        global_ids = self.global_ids()
        return [
            (int(global_ids[position]), int(count))
            for position, count in zip(positions[start:end], counts[start:end])
        ]

    def _match_keys(self, query_branch_sets: Sequence[Counter], csr: _Csr):
        """Resolve every query branch key against the vocabulary.

        Returns ``(rows, key_ids, query_counts)`` int64 arrays with one
        element per *matched* (query, branch key) pair, or ``None`` when no
        key is known.  Keys newer than the supplied CSR snapshot (possible
        only mid-concurrent-append) are treated as unknown, keeping the
        whole read consistent with one snapshot.  This vocabulary pass is
        the only Python-level loop of the query kernels.
        """
        known = len(csr[0]) - 1
        key_ids: List[int] = []
        row_ids: List[int] = []
        query_counts: List[int] = []
        lookup = self._key_ids.get
        for row, query_branches in enumerate(query_branch_sets):
            for key, query_count in query_branches.items():
                key_id = lookup(key)
                if key_id is not None and key_id < known:
                    key_ids.append(key_id)
                    row_ids.append(row)
                    query_counts.append(query_count)
        if not key_ids:
            return None
        return (
            np.asarray(row_ids, dtype=np.int64),
            np.asarray(key_ids, dtype=np.int64),
            np.asarray(query_counts, dtype=np.int64),
        )

    def _match_single(self, query_branches: Counter, csr: _Csr):
        """One-query vocabulary pass: matched keys *and* the cap-sum bound.

        Returns ``(key_ids, query_counts, matched_total)`` — the first two
        ``None`` when no key of the snapshot matched.  ``matched_total`` is
        exactly :meth:`matched_query_total` (it reads the *live* caps over
        every known vocabulary key, including keys newer than the CSR
        snapshot — a newer cap only loosens the bound), while the key arrays
        cover only keys the snapshot can answer for, exactly like
        :meth:`_match_keys`.  Fusing the two passes halves the per-query
        Python-loop work of the pruned path.
        """
        known = len(csr[0]) - 1
        caps = self._key_caps
        lookup = self._key_ids.get
        key_ids: List[int] = []
        query_counts: List[int] = []
        total = 0
        for key, count in query_branches.items():
            key_id = lookup(key)
            if key_id is None:
                continue
            cap = caps[key_id]
            total += count if count <= cap else cap
            if key_id < known:
                key_ids.append(key_id)
                query_counts.append(count)
        if not key_ids:
            return None, None, total
        return (
            np.asarray(key_ids, dtype=np.int64),
            np.asarray(query_counts, dtype=np.int64),
            total,
        )

    # ------------------------------------------------------------------ #
    # vectorized intersection / GBD kernels
    # ------------------------------------------------------------------ #
    def intersection_row(
        self, query_branches: Counter, *, view: Optional[Tuple[_Csr, int]] = None
    ) -> np.ndarray:
        """Return ``|B_Q ∩ B_G|`` for every row as a dense ``(D,)`` array.

        One vocabulary pass over the query's branch keys, then the selected
        backend accumulates the matching CSR segments (a vectorized gather
        plus ``bincount`` scatter-add on numpy, a direct segment scatter in
        C).  ``view`` optionally pins the ``(csr, num_graphs)`` snapshot the
        caller is computing against (see :meth:`view`).
        """
        if view is not None:
            csr, num_graphs = view
        else:
            csr, num_graphs = self._snapshot(), self.num_graphs
        calls, rows = _counters(self.backend).row
        calls.inc()
        rows.inc(num_graphs)
        matched = self._match_keys((query_branches,), csr)
        if matched is None:
            return np.zeros(num_graphs, dtype=np.int64)
        _rows, key_ids, query_counts = matched
        return self._kernels.intersection_row(csr, key_ids, query_counts, num_graphs)

    def intersection_matrix(
        self,
        query_branch_sets: Sequence[Counter],
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """Return the ``(Q, D)`` multiset-intersection matrix of a query batch.

        Entries are identical to stacking :meth:`intersection_row` per
        query, at a fraction of the per-call overhead: the whole batch's
        matched postings are accumulated in one backend pass.
        """
        num_queries = len(query_branch_sets)
        if view is not None:
            csr, num_graphs = view
        else:
            csr, num_graphs = self._snapshot(), self.num_graphs
        calls, rows = _counters(self.backend).matrix
        calls.inc()
        rows.inc(num_queries * num_graphs)
        matched = self._match_keys(query_branch_sets, csr)
        if matched is None:
            return np.zeros((num_queries, num_graphs), dtype=np.int64)
        row_ids, key_ids, query_counts = matched
        return self._kernels.intersection_matrix(
            csr, row_ids, key_ids, query_counts, num_queries, num_graphs
        )

    # ------------------------------------------------------------------ #
    # GBD lower-bound kernels and sparse (position-restricted) intersections
    # ------------------------------------------------------------------ #
    def matched_query_total(self, query_branches: Counter) -> int:
        """Upper bound on ``|B_Q ∩ B_G|`` valid for *every* row: ``Σ_k min(q_k, cap_k)``.

        One vocabulary pass over the query's branch keys; keys absent from
        the vocabulary can match nothing and contribute 0.  Reading the live
        caps while a concurrent append raises them is safe: a larger cap
        only loosens the bound (never past ``|B_Q|``), so the derived GBD
        lower bound stays a true lower bound for any CSR snapshot.
        """
        caps = self._key_caps
        lookup = self._key_ids.get
        total = 0
        for key, count in query_branches.items():
            key_id = lookup(key)
            if key_id is not None:
                cap = caps[key_id]
                total += count if count <= cap else cap
        return total

    def gbd_lower_bound_row(
        self,
        num_query_vertices: int,
        query_branches: Counter,
        *,
        db_orders: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized lower bound on ``GBD(Q, G)`` for every row — O(1) per row.

        ``|B_Q ∩ B_G| <= min(Σ_k min(q_k, cap_k), |B_G|)`` (the per-key-cap
        and branch-count norms), so

        ``GBD(Q, G) >= max(|V_Q|, |V_G|) - min(matched_total, |V_G|)``.

        Because ``matched_total <= |B_Q| = |V_Q|``, this dominates the plain
        size-difference bound ``| |V_Q| - |V_G| |``.  No postings are
        traversed — the whole row costs one vocabulary pass plus two dense
        ops, which is what lets the pruned execution layer discard
        candidates before touching the index.  ``db_orders`` optionally pins
        the per-row order vector of the caller's snapshot.
        """
        orders = self.orders() if db_orders is None else db_orders
        calls, rows = _counters(self.backend).bound_row
        calls.inc()
        rows.inc(len(orders))
        total = self.matched_query_total(query_branches)
        return self._kernels.gbd_lower_bound_row(int(num_query_vertices), total, orders)

    def gbd_lower_bound_matrix(
        self,
        num_query_vertices: Sequence[int],
        query_branch_sets: Sequence[Counter],
        *,
        db_orders: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched form of :meth:`gbd_lower_bound_row`: the ``(Q, D)`` bound matrix."""
        orders = self.orders() if db_orders is None else db_orders
        vertices = np.asarray(list(num_query_vertices), dtype=np.int64)
        calls, rows = _counters(self.backend).bound_matrix
        calls.inc()
        rows.inc(len(vertices) * len(orders))
        totals = np.asarray(
            [self.matched_query_total(branches) for branches in query_branch_sets],
            dtype=np.int64,
        )
        return self._kernels.gbd_lower_bound_matrix(vertices, totals, orders)

    def _composite_for(self, csr: _Csr) -> Tuple[np.ndarray, int]:
        """Flat sorted ``key_id * stride + position`` view of a CSR snapshot.

        Within a key the postings are position-sorted and keys are laid out
        in id order, so the composite codes are strictly increasing — one
        global ``searchsorted`` can probe any (key, row) pair.  Built once
        per compaction (O(P)) and cached against the snapshot's postings
        array *identity* — every :meth:`compact` allocates fresh arrays, so
        a stale entry can never alias a rebuilt snapshot.
        """
        offsets, all_positions, _counts, rows_covered = csr
        stride = max(int(rows_covered), 1)
        cached = self._composite_cache
        if cached is not None and cached[0] is all_positions:
            return cached[1], stride
        keys_of_postings = np.repeat(
            np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
        )
        composite = keys_of_postings * stride + all_positions
        self._composite_cache = (all_positions, composite)
        return composite, stride

    def intersection_subrow(
        self,
        query_branches: Counter,
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``|B_Q ∩ B_G|`` for a sorted subset of rows, without a full gather.

        The index-driven sparse strategy of the pruned execution layer: when
        the bound filter leaves few candidates, the postings of the pruned
        rows are never touched.  The numpy backend probes all K · E (query
        key, surviving row) pairs through the composite-sorted CSR
        (:meth:`_composite_for`); the native backend walks whichever side of
        each key's segment is shorter.  Entries equal
        ``intersection_row(...)[positions]`` exactly.
        """
        csr = view[0] if view is not None else self._snapshot()
        _offsets, _all_positions, all_counts, _rows = csr
        positions = np.asarray(positions, dtype=np.int64)
        num_positions = len(positions)
        calls, rows = _counters(self.backend).subrow
        calls.inc()
        rows.inc(num_positions)
        if num_positions == 0 or len(all_counts) == 0:
            return np.zeros(num_positions, dtype=np.int64)
        matched = self._match_keys((query_branches,), csr)
        if matched is None:
            return np.zeros(num_positions, dtype=np.int64)
        _query_rows, key_ids, query_counts = matched
        return self._kernels.intersection_subrow(
            csr, lambda: self._composite_for(csr), key_ids, query_counts, positions
        )

    def _order_blocks_for(self, csr: _Csr) -> Tuple[np.ndarray, np.ndarray, int]:
        """Postings of a snapshot re-indexed by ``(key, row order)`` blocks.

        Returns ``(sorted codes, permutation, stride)`` where ``codes =
        key_id * stride + |V_row|`` and ``permutation`` maps the sorted
        order back to posting slots.  Every ``(branch key, vertex count)``
        pair owns one contiguous block, located by two binary-search probes
        — the backbone of :meth:`intersection_for_orders` and the fused
        filter-verify kernels.  Built once per compaction (O(P log P)) and
        cached against the snapshot's postings array identity (fresh arrays
        every compaction — see :meth:`_composite_for`).
        """
        offsets, all_positions, _counts, rows_covered = csr
        cached = self._order_blocks_cache
        if cached is not None and cached[0] is all_positions:
            return cached[1]
        orders = self.orders()[: int(rows_covered)]
        stride = int(orders.max()) + 1 if len(orders) else 1
        keys_of_postings = np.repeat(
            np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
        )
        codes = keys_of_postings * stride + orders[all_positions]
        permutation = np.argsort(codes, kind="stable")
        blocks = (codes[permutation], permutation, stride)
        self._order_blocks_cache = (all_positions, blocks)
        return blocks

    def _order_partition_for(
        self, csr: _Csr
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Rows of a snapshot grouped by ``|V_G|``: ``(distinct, row_order, starts, ends)``.

        ``row_order[starts[i]:ends[i]]`` are the (ascending) store positions
        whose order is ``distinct[i]`` — the shape the fused filter-verify
        kernels consume: per-distinct-order eligibility plus slice
        concatenation of the survivors.  Built once per compaction and
        cached against the snapshot's postings array identity.
        """
        _offsets, all_positions, _counts, rows_covered = csr
        cached = self._order_partition_cache
        if cached is not None and cached[0] is all_positions:
            return cached[1]
        orders = self.orders()[: int(rows_covered)]
        distinct = np.unique(orders)
        row_order = np.argsort(orders, kind="stable")
        sorted_orders = orders[row_order]
        starts = np.searchsorted(sorted_orders, distinct, side="left")
        ends = np.searchsorted(sorted_orders, distinct, side="right")
        partition = (distinct, row_order, starts, ends)
        self._order_partition_cache = (all_positions, partition)
        return partition

    def intersection_for_orders(
        self,
        query_branches: Counter,
        order_values: np.ndarray,
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``|B_Q ∩ B_G|`` for every row whose ``|V_G|`` is in ``order_values``.

        ``positions`` must be exactly the (sorted) store positions of those
        rows — the shape the pruned execution layer produces, where bound
        eligibility is decided per distinct order.  Each (query key,
        eligible order) pair is one contiguous block of the
        :meth:`_order_blocks_for` index, so the kernel touches only the
        postings that actually belong to surviving candidates: O(K · U · log
        P) block probes plus O(hits) gather — the postings of pruned-out
        rows are never read.  Entries equal
        ``intersection_row(...)[positions]`` exactly.
        """
        csr = view[0] if view is not None else self._snapshot()
        _offsets, all_positions, _all_counts, _rows = csr
        positions = np.asarray(positions, dtype=np.int64)
        num_positions = len(positions)
        calls, rows = _counters(self.backend).for_orders
        calls.inc()
        rows.inc(num_positions)
        if num_positions == 0 or len(all_positions) == 0:
            return np.zeros(num_positions, dtype=np.int64)
        matched = self._match_keys((query_branches,), csr)
        if matched is None:
            return np.zeros(num_positions, dtype=np.int64)
        _query_rows, key_ids, query_counts = matched
        return self._kernels.intersection_for_orders(
            csr,
            self._order_blocks_for(csr),
            key_ids,
            query_counts,
            np.asarray(order_values, dtype=np.int64),
            positions,
        )

    def intersection_submatrix(
        self,
        query_branch_sets: Sequence[Counter],
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``(Q, E)`` intersection matrix restricted to sorted row ``positions``.

        General-purpose compacted batch kernel — the dense arrays scale with
        E, not the database size D.  (The pruned execution layer's batch
        path uses the fused :meth:`filter_verify_matrix` instead, which also
        skips the gather of the pruned rows' postings.)  Columns equal
        ``intersection_matrix(...)[:, positions]`` exactly.
        """
        num_queries = len(query_branch_sets)
        csr = view[0] if view is not None else self._snapshot()
        positions = np.asarray(positions, dtype=np.int64)
        calls, rows = _counters(self.backend).submatrix
        calls.inc()
        rows.inc(num_queries * len(positions))
        if positions.size == 0:
            return np.zeros((num_queries, len(positions)), dtype=np.int64)
        matched = self._match_keys(query_branch_sets, csr)
        if matched is None:
            return np.zeros((num_queries, len(positions)), dtype=np.int64)
        row_ids, key_ids, query_counts = matched
        return self._kernels.intersection_submatrix(
            csr, row_ids, key_ids, query_counts, num_queries, positions
        )

    # ------------------------------------------------------------------ #
    # fused filter-and-verify entry points (pruned execution layer)
    # ------------------------------------------------------------------ #
    def filter_verify_row(
        self,
        num_query_vertices: int,
        query_branches: Counter,
        thresholds: np.ndarray,
        max_candidates: int,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ):
        """Single-pass bound filter + survivor verification of one query.

        ``thresholds[i]`` is the caller's max acceptable GBD for rows of
        order ``distinct[i]`` (the snapshot's distinct-order partition) —
        the γ-threshold inversion of the execution core.  Returns
        ``(positions, intersections, eligible_orders, num_eligible)``:

        * no order survives — two empty arrays, the all-false mask, 0;
        * ``num_eligible > max_candidates`` (the caller's dense-plan bar) —
          ``(None, None, mask, num_eligible)``; no per-row work was done;
        * otherwise — the sorted surviving store positions and their exact
          ``|B_Q ∩ B_G|`` values (equal to
          ``intersection_row(...)[positions]``), computed without touching
          any pruned row's postings.  On the native backend the whole
          sequence is one C call with no intermediates.
        """
        csr = view[0] if view is not None else self._snapshot()
        partition = self._order_partition_for(csr)
        calls, rows = _counters(self.backend).filter_verify_row
        calls.inc()
        rows.inc(len(partition[0]))
        key_ids, query_counts, matched_total = self._match_single(query_branches, csr)
        if key_ids is None:
            key_ids = _EMPTY_I64
            query_counts = _EMPTY_I64
        return self._kernels.filter_verify_row(
            csr,
            self._order_blocks_for(csr),
            partition,
            int(num_query_vertices),
            matched_total,
            key_ids,
            query_counts,
            np.ascontiguousarray(thresholds, dtype=np.int64),
            int(max_candidates),
        )

    def filter_verify_matrix(
        self,
        num_query_vertices: Sequence[int],
        query_branch_sets: Sequence[Counter],
        thresholds: np.ndarray,
        max_union_rows: int,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ):
        """Group form of :meth:`filter_verify_row` over one (τ̂, γ) batch.

        ``thresholds`` is the ``(G, U)`` per-(query, distinct order) max
        acceptable GBD matrix.  Returns ``(positions, intersections,
        eligible, num_union_rows)`` where ``eligible`` is the ``(G, U)``
        bound-survival mask and ``positions`` covers the *union* of every
        query's surviving orders:

        * empty union — two empty arrays (``intersections`` shaped (G, 0));
        * ``num_union_rows > max_union_rows`` — ``(None, None, eligible,
          num_union_rows)``, the caller's cue to run the dense batch plan;
        * otherwise — sorted union positions plus the ``(G, E)`` exact
          intersection matrix, computed blockwise so pruned orders' postings
          are never read.
        """
        csr = view[0] if view is not None else self._snapshot()
        distinct, row_order, starts, ends = self._order_partition_for(csr)
        num_queries = len(query_branch_sets)
        calls, rows = _counters(self.backend).filter_verify_matrix
        calls.inc()
        rows.inc(num_queries * len(distinct))
        vertices = np.asarray(list(num_query_vertices), dtype=np.int64)
        matched = [self._match_single(branches, csr) for branches in query_branch_sets]
        totals = np.asarray([entry[2] for entry in matched], dtype=np.int64)
        lower_bounds = np.maximum(vertices[:, None], distinct[None, :]) - np.minimum(
            totals[:, None], distinct[None, :]
        )
        eligible = lower_bounds <= thresholds
        union_orders = eligible.any(axis=0)
        num_union_rows = int((ends - starts)[union_orders].sum())
        if num_union_rows == 0:
            return (
                _EMPTY_I64,
                np.zeros((num_queries, 0), dtype=np.int64),
                eligible,
                0,
            )
        if num_union_rows > max_union_rows:
            return None, None, eligible, num_union_rows
        slots = np.flatnonzero(union_orders)
        if len(slots) == len(distinct):
            positions = np.arange(len(row_order), dtype=np.int64)
        else:
            positions = np.concatenate(
                [row_order[starts[slot] : ends[slot]] for slot in slots.tolist()]
            )
            positions.sort()
        key_offsets = np.zeros(num_queries + 1, dtype=np.int64)
        id_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        for group, (key_ids, query_counts, _total) in enumerate(matched):
            if key_ids is None:
                key_offsets[group + 1] = key_offsets[group]
            else:
                key_offsets[group + 1] = key_offsets[group] + len(key_ids)
                id_parts.append(key_ids)
                count_parts.append(query_counts)
        intersections = self._kernels.intersection_matrix_for_orders(
            csr,
            self._order_blocks_for(csr),
            key_offsets,
            np.concatenate(id_parts) if id_parts else _EMPTY_I64,
            np.concatenate(count_parts) if count_parts else _EMPTY_I64,
            distinct[union_orders],
            positions,
        )
        return positions, intersections, eligible, num_union_rows

    def gbd_row(self, num_query_vertices: int, query_branches: Counter) -> np.ndarray:
        """Return ``GBD(Q, G)`` for every row as a dense ``(D,)`` array."""
        intersections = self.intersection_row(query_branches)
        return np.maximum(int(num_query_vertices), self.orders()) - intersections

    def gbd_matrix(
        self, num_query_vertices: Sequence[int], query_branch_sets: Sequence[Counter]
    ) -> np.ndarray:
        """Return the ``(Q, D)`` GBD matrix of a query batch in one pass."""
        vertices = np.asarray(list(num_query_vertices), dtype=np.int64)
        intersections = self.intersection_matrix(query_branch_sets)
        return np.maximum(vertices[:, None], self.orders()[None, :]) - intersections

    def __repr__(self) -> str:
        return (
            f"<ColumnarBranchStore rows={self.num_graphs} keys={self.num_keys} "
            f"postings={self.num_postings} pending={len(self._pending_keys)} "
            f"backend={self.backend}>"
        )
