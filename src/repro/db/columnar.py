"""Columnar (CSR) storage of the branch postings of a graph database.

:class:`ColumnarBranchStore` holds the inverted branch postings of a
:class:`~repro.db.database.GraphDatabase` in compressed-sparse-row form:

* a *vocabulary* mapping each canonical branch key to a dense integer id,
* three contiguous ``int64`` arrays — ``offsets`` (one slot per branch key,
  CSR row pointers), ``positions`` (the database rows containing the key),
  and ``counts`` (the key's multiplicity in each of those rows).

Compared with the dict-of-tuple-lists layout this replaces, the contiguous
arrays turn the innermost loop of the online stage — accumulating
``|B_Q ∩ B_G|`` over the postings — into numpy slicing plus one
``bincount`` scatter-add, and they generalise to whole query *batches*:
:meth:`gbd_matrix` produces the ``(Q, D)`` GBD matrix of a batch in a
single vectorized pass.

Incremental additions go through an **append buffer**: :meth:`append` is
``O(|branches|)`` bookkeeping, and the CSR arrays are rebuilt lazily by
:meth:`compact` on the next read.  A bulk load of ``k`` graphs therefore
costs one compaction, not ``k`` (see
:meth:`~repro.db.database.GraphDatabase.add_many`).

Concurrency: queries may run from several threads sharing one engine (the
serving executor's ``"thread"`` mode), so the CSR triple is published as a
single immutable tuple swap behind a compaction lock, and readers operate
on one snapshot for the whole query — a query racing a compaction sees
either the pre-add or post-add postings, never a torn mix.  Mutation
(:meth:`append`) is only ever driven by the database's add-hook and is not
itself thread-safe.

Rows are *positions* ``0..D-1`` in insertion order; :meth:`global_ids` maps
positions back to database graph ids.  For a plain
:class:`~repro.db.database.GraphDatabase` the two coincide; for an
id-preserving shard view (:meth:`GraphDatabase.shard`) they differ, which
is what lets shard stores be scored independently and merged by global id.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry

__all__ = ["ColumnarBranchStore"]

# Kernel call/row counters (repro.obs): children are bound once at import so
# the per-call cost is one attribute add — the kernels below are the hot path
# of every online query.  Rows count the cells each call produced (D for a
# dense row, Q·D for a matrix, E for compacted kernels), making
# ``rows / calls`` an instant read on how selective the pruned layer is.
_KERNEL_CALLS = get_registry().counter(
    "repro_kernel_calls_total", "Columnar CSR kernel invocations", ("kernel",)
)
_KERNEL_ROWS = get_registry().counter(
    "repro_kernel_rows_total", "Result cells produced by columnar CSR kernels", ("kernel",)
)
_CALLS_ROW = _KERNEL_CALLS.labels(kernel="intersection_row")
_ROWS_ROW = _KERNEL_ROWS.labels(kernel="intersection_row")
_CALLS_MATRIX = _KERNEL_CALLS.labels(kernel="intersection_matrix")
_ROWS_MATRIX = _KERNEL_ROWS.labels(kernel="intersection_matrix")
_CALLS_SUBROW = _KERNEL_CALLS.labels(kernel="intersection_subrow")
_ROWS_SUBROW = _KERNEL_ROWS.labels(kernel="intersection_subrow")
_CALLS_FOR_ORDERS = _KERNEL_CALLS.labels(kernel="intersection_for_orders")
_ROWS_FOR_ORDERS = _KERNEL_ROWS.labels(kernel="intersection_for_orders")
_CALLS_SUBMATRIX = _KERNEL_CALLS.labels(kernel="intersection_submatrix")
_ROWS_SUBMATRIX = _KERNEL_ROWS.labels(kernel="intersection_submatrix")
_CALLS_BOUND_ROW = _KERNEL_CALLS.labels(kernel="gbd_lower_bound_row")
_ROWS_BOUND_ROW = _KERNEL_ROWS.labels(kernel="gbd_lower_bound_row")
_CALLS_BOUND_MATRIX = _KERNEL_CALLS.labels(kernel="gbd_lower_bound_matrix")
_ROWS_BOUND_MATRIX = _KERNEL_ROWS.labels(kernel="gbd_lower_bound_matrix")

#: The compacted arrays travel together with the number of rows they
#: cover: (offsets, positions, counts, rows_covered).
_Csr = Tuple[np.ndarray, np.ndarray, np.ndarray, int]

_EMPTY_CSR: _Csr = (
    np.zeros(1, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    0,
)


class ColumnarBranchStore:
    """CSR branch-key postings with an append buffer and lazy compaction."""

    def __init__(self, entries: Iterable = ()) -> None:
        self._key_ids: Dict[Tuple, int] = {}
        self._keys: List[Tuple] = []
        # Per-key norm: the largest multiplicity of the key in any single
        # row.  Monotone under appends, which is what makes the lower-bound
        # kernels race-safe (a cap newer than a CSR snapshot only loosens
        # the bound — see matched_query_total).
        self._key_caps: List[int] = []
        # Per-row metadata, grown on append.
        self._row_global_ids: List[int] = []
        self._row_orders: List[int] = []
        # Compacted CSR arrays, swapped atomically as one tuple.
        self._csr: _Csr = _EMPTY_CSR
        # Append buffer: parallel lists of (key id, row position, count).
        self._pending_keys: List[int] = []
        self._pending_positions: List[int] = []
        self._pending_counts: List[int] = []
        # Caches of the dense per-row / per-key vectors.
        self._global_ids_cache: Optional[np.ndarray] = None
        self._orders_cache: Optional[np.ndarray] = None
        self._caps_cache: Optional[np.ndarray] = None
        # (postings array identity, composite codes) of the last snapshot
        # probed by intersection_subrow — see _composite_for.
        self._composite_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # (postings array identity, (sorted codes, permutation, stride)) of
        # the last snapshot's (key, row-order) block index — see
        # _order_blocks_for.
        self._order_blocks_cache: Optional[Tuple[np.ndarray, Tuple]] = None
        self._compact_lock = threading.Lock()
        #: Number of compaction passes performed (bulk-load tests pin this).
        self.num_compactions = 0
        for entry in entries:
            self.append(entry)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_compact_lock"]  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._compact_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def append(self, entry) -> int:
        """Buffer one :class:`~repro.db.database.StoredGraph`; return its position.

        The CSR arrays are not touched — the entry's postings land in the
        append buffer and are merged on the next :meth:`compact` (triggered
        lazily by any read), so bulk loads pay for one compaction total.
        Runs under the compaction lock so a reader-triggered merge can never
        observe (or discard) a half-written buffer entry.
        """
        with self._compact_lock:
            position = len(self._row_global_ids)
            self._row_global_ids.append(int(entry.graph_id))
            self._row_orders.append(int(entry.num_vertices))
            key_ids = self._key_ids
            caps = self._key_caps
            for key, count in entry.branches.items():
                count = int(count)
                key_id = key_ids.get(key)
                if key_id is None:
                    key_id = len(self._keys)
                    key_ids[key] = key_id
                    self._keys.append(key)
                    caps.append(count)
                elif count > caps[key_id]:
                    caps[key_id] = count
                self._pending_keys.append(key_id)
                self._pending_positions.append(position)
                self._pending_counts.append(count)
            self._global_ids_cache = None
            self._orders_cache = None
            self._caps_cache = None
        return position

    def compact(self) -> bool:
        """Merge the append buffer into the CSR arrays; return whether work was done.

        Within each key the postings stay sorted by row position: the old
        segment is copied in order and pending entries (whose positions are
        strictly larger) are placed after it in arrival order.  The merge
        runs under a lock and publishes the rebuilt arrays as one atomic
        tuple swap, so concurrent readers are never exposed to a torn CSR.
        """
        if not self._pending_keys and len(self._csr[0]) == len(self._keys) + 1:
            return False
        with self._compact_lock:
            num_keys = len(self._keys)
            old_offsets, old_positions, old_counts, _old_rows = self._csr
            if not self._pending_keys and len(old_offsets) == num_keys + 1:
                return False  # another thread compacted while we waited

            old_num_keys = len(old_offsets) - 1
            old_lengths = np.diff(old_offsets)
            lengths = np.zeros(num_keys, dtype=np.int64)
            lengths[:old_num_keys] = old_lengths

            if self._pending_keys:
                pending_keys = np.asarray(self._pending_keys, dtype=np.int64)
                pending_positions = np.asarray(self._pending_positions, dtype=np.int64)
                pending_counts = np.asarray(self._pending_counts, dtype=np.int64)
                lengths += np.bincount(pending_keys, minlength=num_keys)

            offsets = np.zeros(num_keys + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            positions = np.empty(int(offsets[-1]), dtype=np.int64)
            counts = np.empty_like(positions)

            if len(old_positions):
                # Shift every old posting of key k by the room its segment grew.
                shift = np.repeat(offsets[:old_num_keys] - old_offsets[:-1], old_lengths)
                destination = np.arange(len(old_positions), dtype=np.int64) + shift
                positions[destination] = old_positions
                counts[destination] = old_counts

            if self._pending_keys:
                order = np.argsort(pending_keys, kind="stable")
                sorted_keys = pending_keys[order]
                # Rank of each pending posting within its key's block.
                block_starts = np.flatnonzero(
                    np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
                )
                block_lengths = np.diff(np.r_[block_starts, len(sorted_keys)])
                ranks = np.arange(len(sorted_keys), dtype=np.int64) - np.repeat(
                    block_starts, block_lengths
                )
                old_tail = np.zeros(num_keys, dtype=np.int64)
                old_tail[:old_num_keys] = old_lengths
                destination = offsets[sorted_keys] + old_tail[sorted_keys] + ranks
                positions[destination] = pending_positions[order]
                counts[destination] = pending_counts[order]

            self._csr = (offsets, positions, counts, len(self._row_global_ids))
            self._pending_keys = []
            self._pending_positions = []
            self._pending_counts = []
            self.num_compactions += 1
        return True

    def _snapshot(self) -> _Csr:
        """Compact if needed and return one consistent CSR tuple."""
        self.compact()
        return self._csr

    def view(self) -> Tuple[_Csr, np.ndarray, np.ndarray]:
        """Return one coherent ``(csr, orders, global_ids)`` read snapshot.

        The three pieces are captured together (retrying across a racing
        append) so a whole query computes against arrays of one length whose
        every row is covered by the CSR — concurrent additions become
        visible only between queries, never as a torn mix or a graph with
        silently missing postings.
        """
        while True:
            csr = self._snapshot()
            orders = self.orders()
            global_ids = self.global_ids()
            if csr[3] == len(orders) == len(global_ids):
                return csr, orders, global_ids

    # ------------------------------------------------------------------ #
    # shape and per-row vectors
    # ------------------------------------------------------------------ #
    @property
    def num_graphs(self) -> int:
        """Number of rows (database graphs) covered by the store."""
        return len(self._row_global_ids)

    @property
    def num_keys(self) -> int:
        """Number of distinct branch keys in the vocabulary."""
        return len(self._keys)

    @property
    def num_postings(self) -> int:
        """Total postings held (compacted segment plus append buffer)."""
        return len(self._csr[1]) + len(self._pending_keys)

    def global_ids(self) -> np.ndarray:
        """Dense ``position -> graph id`` vector (cached)."""
        if self._global_ids_cache is None or len(self._global_ids_cache) != self.num_graphs:
            self._global_ids_cache = np.asarray(self._row_global_ids, dtype=np.int64)
        return self._global_ids_cache

    def orders(self) -> np.ndarray:
        """Dense ``position -> |V_G|`` vector (cached)."""
        if self._orders_cache is None or len(self._orders_cache) != self.num_graphs:
            self._orders_cache = np.asarray(self._row_orders, dtype=np.int64)
        return self._orders_cache

    def branch_totals(self) -> np.ndarray:
        """Dense ``position -> |B_G|`` vector of total branch counts.

        A graph contributes exactly one branch per vertex (Definition 2), so
        the total branch count of a row equals its vertex count — this is
        the per-graph norm the lower-bound kernels cap intersections with,
        exposed under its own name so the bound math reads as written.
        """
        return self.orders()

    def key_caps(self) -> np.ndarray:
        """Dense ``key id -> max per-row multiplicity`` vector (cached)."""
        if self._caps_cache is None or len(self._caps_cache) != len(self._key_caps):
            self._caps_cache = np.asarray(self._key_caps, dtype=np.int64)
        return self._caps_cache

    # ------------------------------------------------------------------ #
    # postings access
    # ------------------------------------------------------------------ #
    def postings(self, branch_key: Tuple) -> List[Tuple[int, int]]:
        """Return the ``(graph_id, count)`` postings of one branch key."""
        offsets, positions, counts, _rows = self._snapshot()
        key_id = self._key_ids.get(branch_key)
        if key_id is None or key_id >= len(offsets) - 1:
            return []
        start, end = int(offsets[key_id]), int(offsets[key_id + 1])
        global_ids = self.global_ids()
        return [
            (int(global_ids[position]), int(count))
            for position, count in zip(positions[start:end], counts[start:end])
        ]

    def _match_keys(self, query_branch_sets: Sequence[Counter], csr: _Csr):
        """Resolve every query branch key against the vocabulary.

        Returns ``(rows, key_ids, query_counts)`` int64 arrays with one
        element per *matched* (query, branch key) pair, or ``None`` when no
        key is known.  Keys newer than the supplied CSR snapshot (possible
        only mid-concurrent-append) are treated as unknown, keeping the
        whole read consistent with one snapshot.  This vocabulary pass is
        the only Python-level loop of the query kernels.
        """
        known = len(csr[0]) - 1
        key_ids: List[int] = []
        row_ids: List[int] = []
        query_counts: List[int] = []
        lookup = self._key_ids.get
        for row, query_branches in enumerate(query_branch_sets):
            for key, query_count in query_branches.items():
                key_id = lookup(key)
                if key_id is not None and key_id < known:
                    key_ids.append(key_id)
                    row_ids.append(row)
                    query_counts.append(query_count)
        if not key_ids:
            return None
        return (
            np.asarray(row_ids, dtype=np.int64),
            np.asarray(key_ids, dtype=np.int64),
            np.asarray(query_counts, dtype=np.int64),
        )

    def _gather(self, query_branch_sets: Sequence[Counter], csr: Optional[_Csr] = None):
        """Gather all matched postings of a query batch in one vectorized pass.

        Returns ``(rows, cols, values)`` int64 arrays — one element per
        matched posting — or ``None`` when nothing matched.  The postings
        are materialised by a single range-concatenation gather over the
        CSR arrays.
        """
        if csr is None:
            csr = self._snapshot()
        matched = self._match_keys(query_branch_sets, csr)
        if matched is None:
            return None
        offsets, all_positions, all_counts, _rows = csr
        row_ids, keys, query_counts = matched
        starts = offsets[keys]
        lengths = offsets[keys + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return None
        # Concatenated [start, end) ranges: repeat each start and add the
        # within-segment offset 0..length-1.
        ends = np.cumsum(lengths)
        flat = np.repeat(starts - (ends - lengths), lengths) + np.arange(total, dtype=np.int64)
        cols = all_positions[flat]
        values = np.minimum(np.repeat(query_counts, lengths), all_counts[flat])
        rows = np.repeat(row_ids, lengths)
        return rows, cols, values

    # ------------------------------------------------------------------ #
    # vectorized intersection / GBD kernels
    # ------------------------------------------------------------------ #
    def intersection_row(
        self, query_branches: Counter, *, view: Optional[Tuple[_Csr, int]] = None
    ) -> np.ndarray:
        """Return ``|B_Q ∩ B_G|`` for every row as a dense ``(D,)`` array.

        One vocabulary pass over the query's branch keys, one vectorized
        gather of the matching CSR segments, and a single ``bincount``
        scatter-add — no Python-level loop over postings.  ``view``
        optionally pins the ``(csr, num_graphs)`` snapshot the caller is
        computing against (see :meth:`view`).
        """
        csr, num_graphs = view if view is not None else (None, self.num_graphs)
        _CALLS_ROW.inc()
        _ROWS_ROW.inc(num_graphs)
        gathered = self._gather((query_branches,), csr)
        if gathered is None:
            return np.zeros(num_graphs, dtype=np.int64)
        _rows, cols, values = gathered
        # The weighted sums are exact small integers, so float64 is lossless.
        return np.bincount(cols, weights=values, minlength=num_graphs).astype(np.int64)

    def intersection_matrix(
        self,
        query_branch_sets: Sequence[Counter],
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """Return the ``(Q, D)`` multiset-intersection matrix of a query batch.

        One vectorized gather materialises every matched posting of the
        whole batch, then each query row is filled by a ``bincount``
        scatter-add over its (contiguous, pre-sorted) slice — entries are
        identical to stacking :meth:`intersection_row` per query, at a
        fraction of the per-call overhead.
        """
        num_queries = len(query_branch_sets)
        csr, num_graphs = view if view is not None else (None, self.num_graphs)
        _CALLS_MATRIX.inc()
        _ROWS_MATRIX.inc(num_queries * num_graphs)
        gathered = self._gather(query_branch_sets, csr)
        if gathered is None:
            return np.zeros((num_queries, num_graphs), dtype=np.int64)
        rows, cols, values = gathered
        # ``rows`` is sorted by construction; slice out each query's run.
        boundaries = np.searchsorted(rows, np.arange(num_queries + 1, dtype=np.int64))
        out = np.zeros((num_queries, num_graphs), dtype=np.float64)
        for row in range(num_queries):
            start, end = boundaries[row], boundaries[row + 1]
            if start == end:
                continue
            out[row] = np.bincount(
                cols[start:end], weights=values[start:end], minlength=num_graphs
            )
        return out.astype(np.int64)

    # ------------------------------------------------------------------ #
    # GBD lower-bound kernels and sparse (position-restricted) intersections
    # ------------------------------------------------------------------ #
    def matched_query_total(self, query_branches: Counter) -> int:
        """Upper bound on ``|B_Q ∩ B_G|`` valid for *every* row: ``Σ_k min(q_k, cap_k)``.

        One vocabulary pass over the query's branch keys; keys absent from
        the vocabulary can match nothing and contribute 0.  Reading the live
        caps while a concurrent append raises them is safe: a larger cap
        only loosens the bound (never past ``|B_Q|``), so the derived GBD
        lower bound stays a true lower bound for any CSR snapshot.
        """
        caps = self._key_caps
        lookup = self._key_ids.get
        total = 0
        for key, count in query_branches.items():
            key_id = lookup(key)
            if key_id is not None:
                cap = caps[key_id]
                total += count if count <= cap else cap
        return total

    def gbd_lower_bound_row(
        self,
        num_query_vertices: int,
        query_branches: Counter,
        *,
        db_orders: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized lower bound on ``GBD(Q, G)`` for every row — O(1) per row.

        ``|B_Q ∩ B_G| <= min(Σ_k min(q_k, cap_k), |B_G|)`` (the per-key-cap
        and branch-count norms), so

        ``GBD(Q, G) >= max(|V_Q|, |V_G|) - min(matched_total, |V_G|)``.

        Because ``matched_total <= |B_Q| = |V_Q|``, this dominates the plain
        size-difference bound ``| |V_Q| - |V_G| |``.  No postings are
        traversed — the whole row costs one vocabulary pass plus two dense
        numpy ops, which is what lets the pruned execution layer discard
        candidates before touching the index.  ``db_orders`` optionally pins
        the per-row order vector of the caller's snapshot.
        """
        orders = self.orders() if db_orders is None else db_orders
        _CALLS_BOUND_ROW.inc()
        _ROWS_BOUND_ROW.inc(len(orders))
        total = self.matched_query_total(query_branches)
        return np.maximum(int(num_query_vertices), orders) - np.minimum(total, orders)

    def gbd_lower_bound_matrix(
        self,
        num_query_vertices: Sequence[int],
        query_branch_sets: Sequence[Counter],
        *,
        db_orders: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched form of :meth:`gbd_lower_bound_row`: the ``(Q, D)`` bound matrix."""
        orders = self.orders() if db_orders is None else db_orders
        vertices = np.asarray(list(num_query_vertices), dtype=np.int64)
        _CALLS_BOUND_MATRIX.inc()
        _ROWS_BOUND_MATRIX.inc(len(vertices) * len(orders))
        totals = np.asarray(
            [self.matched_query_total(branches) for branches in query_branch_sets],
            dtype=np.int64,
        )
        return np.maximum(vertices[:, None], orders[None, :]) - np.minimum(
            totals[:, None], orders[None, :]
        )

    def _composite_for(self, csr: _Csr) -> Tuple[np.ndarray, int]:
        """Flat sorted ``key_id * stride + position`` view of a CSR snapshot.

        Within a key the postings are position-sorted and keys are laid out
        in id order, so the composite codes are strictly increasing — one
        global ``searchsorted`` can probe any (key, row) pair.  Built once
        per compaction (O(P)) and cached against the snapshot's identity.
        """
        offsets, all_positions, _counts, rows_covered = csr
        stride = max(int(rows_covered), 1)
        cached = self._composite_cache
        if cached is not None and cached[0] is all_positions:
            return cached[1], stride
        keys_of_postings = np.repeat(
            np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
        )
        composite = keys_of_postings * stride + all_positions
        self._composite_cache = (all_positions, composite)
        return composite, stride

    def intersection_subrow(
        self,
        query_branches: Counter,
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``|B_Q ∩ B_G|`` for a sorted subset of rows, without a full gather.

        Instead of materialising every posting of the query's keys (O(P))
        and masking, all K · E (query key, surviving row) pairs are probed
        at once by a single ``searchsorted`` against the composite-sorted
        CSR (:meth:`_composite_for`) — the index-driven sparse strategy of
        the pruned execution layer: when the bound filter leaves few
        candidates, the postings of the pruned rows are never touched.
        Entries equal ``intersection_row(...)[positions]`` exactly.
        """
        csr = view[0] if view is not None else self._snapshot()
        offsets, _all_positions, all_counts, _rows = csr
        positions = np.asarray(positions, dtype=np.int64)
        num_positions = len(positions)
        _CALLS_SUBROW.inc()
        _ROWS_SUBROW.inc(num_positions)
        out = np.zeros(num_positions, dtype=np.int64)
        if num_positions == 0 or len(all_counts) == 0:
            return out
        matched = self._match_keys((query_branches,), csr)
        if matched is None:
            return out
        _query_rows, key_ids, query_counts = matched
        order = np.argsort(key_ids, kind="stable")
        key_ids = key_ids[order]
        query_counts = query_counts[order]
        composite, stride = self._composite_for(csr)
        probes = (key_ids[:, None] * stride + positions[None, :]).ravel()
        slots = np.searchsorted(composite, probes)
        slots_clipped = np.minimum(slots, len(composite) - 1)
        hits = composite[slots_clipped] == probes
        if not hits.any():
            return out
        counts = all_counts[slots_clipped[hits]]
        capped = np.minimum(np.repeat(query_counts, num_positions)[hits], counts)
        columns = np.tile(np.arange(num_positions, dtype=np.int64), len(key_ids))[hits]
        # Weighted sums are exact small integers, so float64 is lossless.
        return np.bincount(columns, weights=capped, minlength=num_positions).astype(
            np.int64
        )

    def _order_blocks_for(self, csr: _Csr) -> Tuple[np.ndarray, np.ndarray, int]:
        """Postings of a snapshot re-indexed by ``(key, row order)`` blocks.

        Returns ``(sorted codes, permutation, stride)`` where ``codes =
        key_id * stride + |V_row|`` and ``permutation`` maps the sorted
        order back to posting slots.  Every ``(branch key, vertex count)``
        pair owns one contiguous block, located by two ``searchsorted``
        probes — the backbone of :meth:`intersection_for_orders`.  Built
        once per compaction (O(P log P)) and cached against the snapshot.
        """
        offsets, all_positions, _counts, rows_covered = csr
        cached = self._order_blocks_cache
        if cached is not None and cached[0] is all_positions:
            return cached[1]
        orders = self.orders()[: int(rows_covered)]
        stride = int(orders.max()) + 1 if len(orders) else 1
        keys_of_postings = np.repeat(
            np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
        )
        codes = keys_of_postings * stride + orders[all_positions]
        permutation = np.argsort(codes, kind="stable")
        blocks = (codes[permutation], permutation, stride)
        self._order_blocks_cache = (all_positions, blocks)
        return blocks

    def intersection_for_orders(
        self,
        query_branches: Counter,
        order_values: np.ndarray,
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``|B_Q ∩ B_G|`` for every row whose ``|V_G|`` is in ``order_values``.

        ``positions`` must be exactly the (sorted) store positions of those
        rows — the shape the pruned execution layer produces, where bound
        eligibility is decided per distinct order.  Each (query key,
        eligible order) pair is one contiguous block of the
        :meth:`_order_blocks_for` index, so the kernel touches only the
        postings that actually belong to surviving candidates: O(K · U · log
        P) block probes plus O(hits) gather — the postings of pruned-out
        rows are never read.  Entries equal
        ``intersection_row(...)[positions]`` exactly.
        """
        csr = view[0] if view is not None else self._snapshot()
        offsets, all_positions, all_counts, _rows = csr
        positions = np.asarray(positions, dtype=np.int64)
        num_positions = len(positions)
        _CALLS_FOR_ORDERS.inc()
        _ROWS_FOR_ORDERS.inc(num_positions)
        out = np.zeros(num_positions, dtype=np.int64)
        if num_positions == 0 or len(all_positions) == 0:
            return out
        matched = self._match_keys((query_branches,), csr)
        if matched is None:
            return out
        _query_rows, key_ids, query_counts = matched
        codes_sorted, permutation, stride = self._order_blocks_for(csr)
        order_values = np.asarray(order_values, dtype=np.int64)
        probe_codes = (key_ids[:, None] * stride + order_values[None, :]).ravel()
        starts = np.searchsorted(codes_sorted, probe_codes, side="left")
        ends = np.searchsorted(codes_sorted, probe_codes, side="right")
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return out
        # Concatenated [start, end) block ranges (cf. _gather).
        block_ends = np.cumsum(lengths)
        flat = np.repeat(starts - (block_ends - lengths), lengths) + np.arange(
            total, dtype=np.int64
        )
        posting_slots = permutation[flat]
        rows = all_positions[posting_slots]
        counts = all_counts[posting_slots]
        capped = np.minimum(
            np.repeat(np.repeat(query_counts, len(order_values)), lengths), counts
        )
        columns = np.searchsorted(positions, rows)
        # Weighted sums are exact small integers, so float64 is lossless.
        return np.bincount(columns, weights=capped, minlength=num_positions).astype(
            np.int64
        )

    def intersection_submatrix(
        self,
        query_branch_sets: Sequence[Counter],
        positions: np.ndarray,
        *,
        view: Optional[Tuple[_Csr, int]] = None,
    ) -> np.ndarray:
        """``(Q, E)`` intersection matrix restricted to sorted row ``positions``.

        General-purpose compacted batch kernel: one gather materialises the
        batch's matched postings, postings outside ``positions`` are masked
        away, and each query row is filled by a ``bincount`` over the
        *compacted* position space — the dense arrays scale with E, not the
        database size D.  (The pruned execution layer's batch path uses
        :meth:`intersection_for_orders` per query instead, which also skips
        the gather of the pruned rows' postings.)  Columns equal
        ``intersection_matrix(...)[:, positions]`` exactly.
        """
        num_queries = len(query_branch_sets)
        csr = view[0] if view is not None else None
        positions = np.asarray(positions, dtype=np.int64)
        _CALLS_SUBMATRIX.inc()
        _ROWS_SUBMATRIX.inc(num_queries * len(positions))
        out = np.zeros((num_queries, len(positions)), dtype=np.int64)
        if positions.size == 0:
            return out
        gathered = self._gather(query_branch_sets, csr)
        if gathered is None:
            return out
        rows, cols, values = gathered
        slots = np.searchsorted(positions, cols)
        slots_clipped = np.minimum(slots, len(positions) - 1)
        member = positions[slots_clipped] == cols
        rows = rows[member]
        compact = slots_clipped[member]
        values = values[member]
        boundaries = np.searchsorted(rows, np.arange(num_queries + 1, dtype=np.int64))
        dense = np.zeros((num_queries, len(positions)), dtype=np.float64)
        for row in range(num_queries):
            start, end = boundaries[row], boundaries[row + 1]
            if start == end:
                continue
            dense[row] = np.bincount(
                compact[start:end], weights=values[start:end], minlength=len(positions)
            )
        return dense.astype(np.int64)

    def gbd_row(self, num_query_vertices: int, query_branches: Counter) -> np.ndarray:
        """Return ``GBD(Q, G)`` for every row as a dense ``(D,)`` array."""
        intersections = self.intersection_row(query_branches)
        return np.maximum(int(num_query_vertices), self.orders()) - intersections

    def gbd_matrix(
        self, num_query_vertices: Sequence[int], query_branch_sets: Sequence[Counter]
    ) -> np.ndarray:
        """Return the ``(Q, D)`` GBD matrix of a query batch in one pass."""
        vertices = np.asarray(list(num_query_vertices), dtype=np.int64)
        intersections = self.intersection_matrix(query_branch_sets)
        return np.maximum(vertices[:, None], self.orders()[None, :]) - intersections

    def __repr__(self) -> str:
        return (
            f"<ColumnarBranchStore rows={self.num_graphs} keys={self.num_keys} "
            f"postings={self.num_postings} pending={len(self._pending_keys)}>"
        )
