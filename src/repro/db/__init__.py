"""In-memory graph database with pre-computed branch structures.

The paper assumes that "all auxiliary data structures in different methods
... are pre-computed and stored with graphs"; this subpackage provides that
storage layer: a :class:`~repro.db.database.GraphDatabase` holding graphs
together with their branch multisets and summary statistics, an inverted
branch index for candidate counting, and a small query layer shared by the
GBDA search and the baselines.
"""

from repro.db.database import GraphDatabase, GraphDatabaseShard, StoredGraph
from repro.db.columnar import ColumnarBranchStore
from repro.db.index import BranchInvertedIndex
from repro.db.catalog import DatabaseCatalog
from repro.db.query import SimilarityQuery, QueryAnswer

__all__ = [
    "GraphDatabase",
    "GraphDatabaseShard",
    "StoredGraph",
    "ColumnarBranchStore",
    "BranchInvertedIndex",
    "DatabaseCatalog",
    "SimilarityQuery",
    "QueryAnswer",
]
