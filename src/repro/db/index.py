"""Inverted branch index over a graph database.

The index maps each canonical branch key to the list of (graph id, count)
pairs containing it.  It supports three operations used by the search and
serving layers:

* fast computation of ``|B_Q ∩ B_G|`` for *all* database graphs at once
  (one pass over the query's branches instead of one merge per graph),
* a dense vectorized variant (:meth:`gbd_array`) returning the GBD of the
  query against every database graph as a numpy array — the default GBD
  path of the batched serving engine, and
* a branch-count lower bound on GED (the filter of Zheng et al. [15]) that
  can optionally pre-prune candidates before the probabilistic scoring —
  this is the "index pruning" ablation of the benchmark suite.

The index subscribes to the database's incremental hook
(:meth:`~repro.db.database.GraphDatabase.subscribe`), so graphs added to the
database *after* construction are reflected in the postings automatically —
previously the index silently served stale, incomplete candidate sets.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.branches import branch_multiset
from repro.db.database import GraphDatabase, StoredGraph
from repro.graphs.graph import Graph

__all__ = ["BranchInvertedIndex"]


class BranchInvertedIndex:
    """Inverted index from branch keys to the graphs containing them."""

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database
        self._postings: Dict[Tuple, List[Tuple[int, int]]] = defaultdict(list)
        self._num_indexed = 0
        self._orders: Optional[np.ndarray] = None
        self._build()
        database.subscribe(self._on_graph_added)

    def _build(self) -> None:
        for entry in self.database:
            self._index_entry(entry)

    def _index_entry(self, entry: StoredGraph) -> None:
        for key, count in entry.branches.items():
            self._postings[key].append((entry.graph_id, count))
        self._num_indexed += 1

    def _on_graph_added(self, entry: StoredGraph) -> None:
        """Incremental hook: keep the postings consistent with the database."""
        self._index_entry(entry)
        self._orders = None  # the dense orders vector must be rebuilt

    def __setstate__(self, state):
        # The database drops its (weakly held) subscribers when pickled;
        # re-register so an unpickled index keeps tracking additions.
        self.__dict__.update(state)
        self.database.subscribe(self._on_graph_added)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_distinct_branches(self) -> int:
        """Number of distinct branch keys present in the database."""
        return len(self._postings)

    @property
    def num_indexed_graphs(self) -> int:
        """Number of database graphs covered by the postings."""
        return self._num_indexed

    def postings(self, branch_key: Tuple) -> List[Tuple[int, int]]:
        """Return the ``(graph_id, count)`` postings list of one branch key."""
        return list(self._postings.get(branch_key, ()))

    def intersection_sizes(self, query: Graph, *, query_branches: Optional[Counter] = None) -> Dict[int, int]:
        """Return ``{graph_id: |B_Q ∩ B_G|}`` for every database graph.

        Graphs sharing no branch with the query are omitted (their
        intersection size is zero).
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        sizes: Dict[int, int] = defaultdict(int)
        for key, query_count in branches_q.items():
            for graph_id, graph_count in self._postings.get(key, ()):
                sizes[graph_id] += min(query_count, graph_count)
        return dict(sizes)

    def gbd_all(self, query: Graph, *, query_branches: Optional[Counter] = None) -> Dict[int, int]:
        """Return ``{graph_id: GBD(Q, G)}`` for every database graph via the index."""
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        intersections = self.intersection_sizes(query, query_branches=branches_q)
        gbds = {}
        for entry in self.database:
            intersection = intersections.get(entry.graph_id, 0)
            gbds[entry.graph_id] = max(query.num_vertices, entry.num_vertices) - intersection
        return gbds

    def extended_orders_array(self, num_query_vertices: int) -> np.ndarray:
        """Return ``max(|V_Q|, |V_G|)`` for every database graph as an array."""
        return np.maximum(int(num_query_vertices), self._orders_array())

    def gbd_array(self, query: Graph, *, query_branches: Optional[Counter] = None) -> np.ndarray:
        """Return ``GBD(Q, G)`` for every database graph as a dense numpy array.

        The array is indexed by graph id (ids are assigned contiguously by
        :meth:`GraphDatabase.add`).  This is the vectorized form of
        :meth:`gbd_all` — one pass over the query's branches accumulates the
        multiset-intersection sizes, then a single numpy subtraction produces
        all GBDs at once; it is the default GBD path of the serving engine.
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        intersections = np.zeros(len(self.database), dtype=np.int64)
        for key, query_count in branches_q.items():
            for graph_id, graph_count in self._postings.get(key, ()):
                intersections[graph_id] += min(query_count, graph_count)
        return np.maximum(query.num_vertices, self._orders_array()) - intersections

    def _orders_array(self) -> np.ndarray:
        """Dense ``|V_G|`` per graph id, rebuilt lazily after additions."""
        if self._orders is None or len(self._orders) != len(self.database):
            self._orders = np.fromiter(
                (entry.num_vertices for entry in self.database),
                dtype=np.int64,
                count=len(self.database),
            )
        return self._orders

    def candidates_by_gbd_bound(
        self,
        query: Graph,
        tau_hat: int,
        *,
        query_branches: Optional[Counter] = None,
    ) -> List[int]:
        """Prune graphs using the branch lower bound ``GED >= GBD / 2``.

        One edit operation changes at most two branches, so any graph with
        ``GBD(Q, G) > 2 τ̂`` cannot satisfy ``GED(Q, G) <= τ̂``.  Returns the
        ids of the surviving candidates.  This is the structural filter of
        Zheng et al. [15] expressed in terms of GBD; it is optional for GBDA
        (the probabilistic score already drives acceptance) but gives the
        ablation benchmark its pruning variant.
        """
        gbds = self.gbd_all(query, query_branches=query_branches)
        return [graph_id for graph_id, gbd in gbds.items() if gbd <= 2 * tau_hat]

    def __repr__(self) -> str:
        return (
            f"<BranchInvertedIndex graphs={len(self.database)} "
            f"branches={self.num_distinct_branches}>"
        )
