"""Inverted branch index over a graph database.

The index maps each canonical branch key to the list of (graph id, count)
pairs containing it.  Storage is delegated to a CSR-style
:class:`~repro.db.columnar.ColumnarBranchStore` (branch-key vocabulary plus
contiguous ``offsets``/``positions``/``counts`` arrays with an append
buffer), so the operations used by the search and serving layers are all
vectorized:

* fast computation of ``|B_Q ∩ B_G|`` for *all* database graphs at once
  (one gather over the query's CSR segments plus a ``bincount`` scatter-add
  instead of one merge per graph),
* a dense vectorized variant (:meth:`gbd_array`) returning the GBD of the
  query against every database graph as a numpy array, and its batched form
  :meth:`gbd_matrix` returning the ``(Q, D)`` GBD matrix of a whole query
  batch in one pass — the default GBD paths of the serving engine, and
* a branch-count lower bound on GED (the filter of Zheng et al. [15]) that
  can optionally pre-prune candidates before the probabilistic scoring —
  this is the "index pruning" ablation of the benchmark suite.

The index subscribes to the database's incremental hook
(:meth:`~repro.db.database.GraphDatabase.subscribe`), so graphs added to the
database *after* construction are reflected in the postings automatically —
previously the index silently served stale, incomplete candidate sets.
Additions land in the store's append buffer and are folded in by a single
compaction on the next read, so bulk loads stay cheap.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.branches import branch_multiset
from repro.core.gbd import max_gbd_for_ged
from repro.db.columnar import ColumnarBranchStore
from repro.db.database import GraphDatabase, StoredGraph
from repro.graphs.graph import Graph

__all__ = ["BranchInvertedIndex"]


class BranchInvertedIndex:
    """Inverted index from branch keys to the graphs containing them."""

    def __init__(self, database: GraphDatabase, *, backend: str = "auto") -> None:
        self.database = database
        self._store = ColumnarBranchStore(database, backend=backend)
        database.subscribe(self._on_graph_added)

    def _on_graph_added(self, entry: StoredGraph) -> None:
        """Incremental hook: buffer the new entry's postings in the store."""
        self._store.append(entry)

    def __setstate__(self, state):
        # The database drops its (weakly held) subscribers when pickled;
        # re-register so an unpickled index keeps tracking additions.
        self.__dict__.update(state)
        self.database.subscribe(self._on_graph_added)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> ColumnarBranchStore:
        """The columnar postings store backing this index."""
        return self._store

    @property
    def num_distinct_branches(self) -> int:
        """Number of distinct branch keys present in the database."""
        return self._store.num_keys

    @property
    def num_indexed_graphs(self) -> int:
        """Number of database graphs covered by the postings."""
        return self._store.num_graphs

    def postings(self, branch_key: Tuple) -> List[Tuple[int, int]]:
        """Return the ``(graph_id, count)`` postings list of one branch key."""
        return self._store.postings(branch_key)

    def intersection_sizes(
        self, query: Graph, *, query_branches: Optional[Counter] = None
    ) -> Dict[int, int]:
        """Return ``{graph_id: |B_Q ∩ B_G|}`` for every database graph.

        Graphs sharing no branch with the query are omitted (their
        intersection size is zero).
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        row = self._store.intersection_row(branches_q)
        global_ids = self._store.global_ids()
        nonzero = np.flatnonzero(row)
        return {int(global_ids[position]): int(row[position]) for position in nonzero}

    def gbd_all(self, query: Graph, *, query_branches: Optional[Counter] = None) -> Dict[int, int]:
        """Return ``{graph_id: GBD(Q, G)}`` for every database graph via the index."""
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        gbds = self._store.gbd_row(query.num_vertices, branches_q)
        global_ids = self._store.global_ids()
        return {int(graph_id): int(gbd) for graph_id, gbd in zip(global_ids, gbds)}

    def extended_orders_array(self, num_query_vertices: int) -> np.ndarray:
        """Return ``max(|V_Q|, |V_G|)`` for every database graph as an array."""
        return np.maximum(int(num_query_vertices), self._store.orders())

    def gbd_array(self, query: Graph, *, query_branches: Optional[Counter] = None) -> np.ndarray:
        """Return ``GBD(Q, G)`` for every database graph as a dense numpy array.

        The array is indexed by store position — identical to graph id for a
        plain :class:`GraphDatabase` (ids are assigned contiguously by
        :meth:`GraphDatabase.add`; shard views map positions to global ids
        via ``store.global_ids()``).  This is the vectorized form of
        :meth:`gbd_all`: one gather over the query's CSR segments plus a
        ``bincount`` scatter-add produces all intersection sizes, then a
        single numpy subtraction yields every GBD at once.
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return self._store.gbd_row(query.num_vertices, branches_q)

    def gbd_matrix(
        self,
        queries: Sequence[Graph],
        *,
        query_branches: Optional[Sequence[Counter]] = None,
    ) -> np.ndarray:
        """Return the ``(Q, D)`` GBD matrix of a query batch in one vectorized pass.

        Row ``i`` equals ``gbd_array(queries[i])``; the whole batch is
        produced by a single scatter-add over the flattened matrix, which is
        what the serving engine's batched path builds on.
        """
        if query_branches is None:
            query_branches = [branch_multiset(query) for query in queries]
        return self._store.gbd_matrix(
            [query.num_vertices for query in queries], list(query_branches)
        )

    def candidates_by_gbd_bound(
        self,
        query: Graph,
        tau_hat: int,
        *,
        query_branches: Optional[Counter] = None,
    ) -> List[int]:
        """Prune graphs using the branch lower bound ``GED >= GBD / 2``.

        One edit operation changes at most two branches, so any graph with
        ``GBD(Q, G) > 2 τ̂`` cannot satisfy ``GED(Q, G) <= τ̂``.  Returns the
        ids of the surviving candidates.  This is the structural filter of
        Zheng et al. [15] expressed in terms of GBD; it is optional for GBDA
        (the probabilistic score already drives acceptance) but gives the
        ablation benchmark its pruning variant.
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        gbds = self._store.gbd_row(query.num_vertices, branches_q)
        global_ids = self._store.global_ids()
        survivors = np.flatnonzero(gbds <= max_gbd_for_ged(tau_hat))
        return [int(global_ids[position]) for position in survivors]

    def gbd_lower_bound_array(
        self, query: Graph, *, query_branches: Optional[Counter] = None
    ) -> np.ndarray:
        """Vectorized GBD lower bound for every database graph (store positions).

        Entry-wise ``<= gbd_array(query)`` always; computed from per-graph
        norms only (O(1) per graph, no postings traversal) — see
        :meth:`ColumnarBranchStore.gbd_lower_bound_row`.
        """
        branches_q = branch_multiset(query) if query_branches is None else query_branches
        return self._store.gbd_lower_bound_row(query.num_vertices, branches_q)

    def __repr__(self) -> str:
        return (
            f"<BranchInvertedIndex graphs={len(self.database)} "
            f"branches={self.num_distinct_branches}>"
        )
