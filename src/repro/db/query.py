"""Query objects and answers shared by all similarity-search methods.

A :class:`SimilarityQuery` captures the inputs of the stated graph
similarity search problem (query graph ``Q``, similarity threshold ``τ̂``,
and — for probabilistic methods — the probability threshold ``γ``), and a
:class:`QueryAnswer` captures one method's output so the evaluation layer
can compute precision/recall/F1 uniformly across GBDA and the baselines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import QueryError
from repro.graphs.graph import Graph

__all__ = ["SimilarityQuery", "QueryAnswer"]


@dataclass(frozen=True)
class SimilarityQuery:
    """Inputs of one graph similarity search (Problem Statement, Section I)."""

    query_graph: Graph
    tau_hat: int
    gamma: float = 0.9
    #: Optional top-k mode: when set, the query asks for the ``top_k``
    #: database graphs ranked by posterior (ties broken by ascending graph
    #: id) instead of the γ-thresholded answer set — γ is ignored by the
    #: ranking.  Engines route such queries through their top-k path.
    top_k: Optional[int] = None
    #: Lazily cached canonical branch multiset of the query graph (see
    #: :meth:`branches`); never part of equality or construction.
    _branches: Optional[Counter] = field(
        default=None, init=False, repr=False, compare=False
    )

    def branches(self) -> Counter:
        """Return (and cache) ``B_Q``, the query's canonical branch multiset.

        Extracting the multiset is the per-query constant cost of the online
        stage (Step 2's input), so the search and serving layers share one
        extraction per query object instead of repeating it per scoring
        path.  The query is a request-scoped value object: mutating
        ``query_graph`` after the first scoring call is not supported.
        """
        branches = self._branches
        if branches is None:
            from repro.core.branches import branch_multiset

            branches = branch_multiset(self.query_graph)
            object.__setattr__(self, "_branches", branches)
        return branches

    def __post_init__(self) -> None:
        try:
            tau_hat = int(self.tau_hat)
            if tau_hat != self.tau_hat:
                raise QueryError("the similarity threshold τ̂ must be an integer")
        except (TypeError, ValueError) as exc:
            raise QueryError("the similarity threshold τ̂ must be an integer") from exc
        if tau_hat < 0:
            raise QueryError("the similarity threshold τ̂ must be non-negative")
        try:
            gamma = float(self.gamma)
        except (TypeError, ValueError) as exc:
            raise QueryError("the probability threshold γ must be a number in [0, 1]") from exc
        if not 0.0 <= gamma <= 1.0:
            raise QueryError("the probability threshold γ must lie in [0, 1]")
        top_k = self.top_k
        if top_k is not None:
            try:
                value = int(top_k)
                if value != top_k:
                    raise QueryError("top_k must be a positive integer or None")
            except (TypeError, ValueError) as exc:
                raise QueryError("top_k must be a positive integer or None") from exc
            if value < 1:
                raise QueryError("top_k must be a positive integer or None")
            top_k = value
        # Normalise so downstream arithmetic/comparisons see native numbers
        # even when the caller passed e.g. numpy scalars or 2.0 / "0.5".
        object.__setattr__(self, "tau_hat", tau_hat)
        object.__setattr__(self, "gamma", gamma)
        object.__setattr__(self, "top_k", top_k)


@dataclass
class QueryAnswer:
    """The result set returned by one method for one query.

    Attributes
    ----------
    method:
        Human-readable method name (``"GBDA"``, ``"LSAP"``, ...).
    accepted_ids:
        The ids of the database graphs reported as similar.
    scores:
        Optional per-graph scores (posterior probabilities for GBDA,
        estimated GEDs for the baselines); useful for diagnostics.
    elapsed_seconds:
        Online wall-clock time spent answering the query.
    ranking:
        For top-k answers only: the ``(graph id, score)`` pairs ordered by
        descending score (ascending id under ties) — the ordered view of
        ``accepted_ids``/``scores``, which are unordered containers.
    """

    method: str
    accepted_ids: FrozenSet[int]
    scores: Dict[int, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    ranking: Optional[List[Tuple[int, float]]] = None

    @property
    def size(self) -> int:
        """Number of graphs in the answer set."""
        return len(self.accepted_ids)

    def contains(self, graph_id: int) -> bool:
        """Whether a database graph id is part of the answer."""
        return graph_id in self.accepted_ids

    def score_of(self, graph_id: int) -> Optional[float]:
        """Return the recorded score of a graph id, if any."""
        return self.scores.get(graph_id)

    # ------------------------------------------------------------------ #
    # wire serialization (used by the repro.service protocol)
    # ------------------------------------------------------------------ #
    def to_wire(self) -> Dict[str, object]:
        """Return a JSON-safe dict that round-trips through :meth:`from_wire`.

        Graph ids and scores are coerced to native ``int``/``float`` (numpy
        scalars carry the same bits, so equality with in-process answers is
        preserved), and score/ranking maps are carried as ``[id, score]``
        pairs because JSON object keys would stringify the integer ids.
        Floats survive JSON exactly — ``json`` emits ``repr`` which parses
        back to the identical double — so a decoded answer compares equal,
        bit for bit, to the answer the server computed.
        """
        return {
            "method": self.method,
            "accepted_ids": sorted(int(graph_id) for graph_id in self.accepted_ids),
            "scores": [
                [int(graph_id), float(score)]
                for graph_id, score in sorted(self.scores.items())
            ],
            "elapsed_seconds": float(self.elapsed_seconds),
            "ranking": None
            if self.ranking is None
            else [[int(graph_id), float(score)] for graph_id, score in self.ranking],
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "QueryAnswer":
        """Rebuild an answer from :meth:`to_wire` output."""
        ranking = payload.get("ranking")
        return cls(
            method=str(payload["method"]),
            accepted_ids=frozenset(int(graph_id) for graph_id in payload["accepted_ids"]),
            scores={
                int(graph_id): float(score) for graph_id, score in payload.get("scores", [])
            },
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            ranking=None
            if ranking is None
            else [(int(graph_id), float(score)) for graph_id, score in ranking],
        )
