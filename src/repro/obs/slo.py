"""Declarative SLOs evaluated as multi-window burn rates over live metrics.

An *objective* says what fraction of requests must be good — e.g. "99% of
requests complete within 250 ms" or "99.9% of requests succeed".  The
engine turns the cumulative good/total counts already maintained by the
metrics registry (histogram buckets, outcome counters) into **burn
rates**: the rate at which the error budget (``1 - objective``) is being
spent, normalized so that burn 1.0 exhausts the budget exactly at the end
of the compliance period.

Alerting follows the multi-window pattern from the SRE workbook: a page
requires *both* a short window (fast detection, 5 m) and a long window
(sustained damage, 1 h) to burn above the page threshold — a brief spike
trips neither, a real outage trips both within minutes.  State transitions
are ``ok → warn → page`` (and back), exported as ``repro_slo_state`` /
``repro_slo_burn_rate`` gauges next to the metrics they are computed from,
and returned by the service's ``slo`` admin command.

Everything is deterministic under an injectable clock: :meth:`SLOEngine.evaluate`
appends one ``(now, good, total)`` sample per objective to a pruned ring
and differences it against the sample at each window's horizon, so tests
drive the clock and the counters by hand and assert exact transitions.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

__all__ = [
    "SLOTarget",
    "SLOEngine",
    "latency_slo",
    "error_rate_slo",
    "DEFAULT_WINDOWS",
    "STATE_OK",
    "STATE_WARN",
    "STATE_PAGE",
]

#: Multi-window horizon seconds: short (fast detection) and long (sustained).
DEFAULT_WINDOWS: Tuple[float, ...] = (300.0, 3600.0)

STATE_OK = "ok"
STATE_WARN = "warn"
STATE_PAGE = "page"
_STATE_VALUES = {STATE_OK: 0.0, STATE_WARN: 1.0, STATE_PAGE: 2.0}


class SLOTarget:
    """One declarative objective over a cumulative ``(good, total)`` source.

    ``counts`` is any callable returning the *cumulative* good and total
    event counts — the engine differences successive readings, so the
    source only ever needs to count up.  Use :func:`latency_slo` /
    :func:`error_rate_slo` to build one from registry metrics.
    """

    def __init__(
        self,
        name: str,
        objective: float,
        counts: Callable[[], Tuple[float, float]],
        description: str = "",
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must lie strictly between 0 and 1")
        self.name = str(name)
        self.objective = float(objective)
        self.counts = counts
        self.description = description

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def __repr__(self) -> str:
        return f"<SLOTarget {self.name} objective={self.objective}>"


def latency_slo(
    name: str,
    histogram: Histogram,
    threshold_seconds: float,
    objective: float = 0.99,
    description: str = "",
) -> SLOTarget:
    """Objective: ``objective`` of observations at most ``threshold_seconds``.

    Good = cumulative count of the largest histogram bucket whose upper
    bound is <= the threshold (the classic Prometheus ``le`` trick), so
    the threshold should coincide with a bucket bound; a threshold between
    bounds is conservatively rounded *down* to the next bound.
    """
    slot = bisect_right(histogram.bounds, float(threshold_seconds))
    if slot == 0:
        raise ValueError(
            f"threshold {threshold_seconds}s is below the lowest bucket bound "
            f"{histogram.bounds[0]}s"
        )

    def counts() -> Tuple[float, float]:
        good = 0
        for bucket_count in histogram.bucket_counts[:slot]:
            good += bucket_count
        return float(good), float(histogram.count)

    return SLOTarget(
        name,
        objective,
        counts,
        description
        or f"{objective:.1%} of observations <= {histogram.bounds[slot - 1] * 1e3:g}ms",
    )


def error_rate_slo(
    name: str,
    total: Callable[[], float],
    bad: Callable[[], float],
    objective: float = 0.999,
    description: str = "",
) -> SLOTarget:
    """Objective: at most ``1 - objective`` of events are bad.

    ``total`` and ``bad`` are cumulative-count callables (e.g. sums over
    an outcome-labeled counter family).
    """

    def counts() -> Tuple[float, float]:
        all_events = float(total())
        return all_events - float(bad()), all_events

    return SLOTarget(name, objective, counts, description or f"{objective:.2%} success")


class _TrackedSLO:
    """One objective plus its sample ring and alert state."""

    def __init__(self, target: SLOTarget, max_window: float) -> None:
        self.target = target
        self.state = STATE_OK
        self.transitions: List[Dict[str, Any]] = []
        self.samples: Deque[Tuple[float, float, float]] = deque()
        self._horizon = max_window * 1.25 + 1.0

    def observe(self, now: float) -> Tuple[float, float]:
        good, total = self.target.counts()
        self.samples.append((now, good, total))
        while self.samples and self.samples[0][0] < now - self._horizon:
            self.samples.popleft()
        return good, total

    def window_burn(self, now: float, window: float) -> float:
        """Burn rate over the trailing ``window`` seconds (0 when idle).

        Differences the newest sample against the oldest sample inside the
        window; burn = (bad fraction in window) / error budget.
        """
        if not self.samples:
            return 0.0
        newest_t, newest_good, newest_total = self.samples[-1]
        base = None
        for sample in self.samples:
            if sample[0] >= now - window:
                base = sample
                break
        if base is None or base[0] == newest_t:
            base = self.samples[0]
        delta_total = newest_total - base[2]
        if delta_total <= 0:
            return 0.0
        delta_bad = max(delta_total - (newest_good - base[1]), 0.0)
        return (delta_bad / delta_total) / self.target.error_budget


class SLOEngine:
    """Evaluates registered objectives into burn rates, gauges, and alerts.

    Parameters
    ----------
    windows:
        Trailing horizons in seconds (default 5 m and 1 h).  A state is
        only entered when **every** window agrees — the multi-window AND.
    warn_burn, page_burn:
        Burn-rate thresholds for the warn and page states.  Burn 1.0 means
        the error budget is being spent exactly at sustainable speed.
    clock:
        Injectable monotonic clock (tests drive transitions by hand).
    registry:
        Where the ``repro_slo_*`` gauges are registered (default: the
        process-global registry).
    on_transition:
        Optional callback ``(slo_name, old_state, new_state, burns)``
        invoked on every alert state change (the service logs these).
    """

    def __init__(
        self,
        *,
        windows: Tuple[float, ...] = DEFAULT_WINDOWS,
        warn_burn: float = 2.0,
        page_burn: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        on_transition: Optional[Callable[[str, str, str, Dict[str, float]], None]] = None,
    ) -> None:
        if not windows:
            raise ValueError("at least one burn-rate window is required")
        if warn_burn <= 0 or page_burn <= 0 or page_burn < warn_burn:
            raise ValueError("need 0 < warn_burn <= page_burn")
        self.windows = tuple(sorted(float(w) for w in windows))
        self.warn_burn = float(warn_burn)
        self.page_burn = float(page_burn)
        self.on_transition = on_transition
        self._clock = clock
        self._tracked: Dict[str, _TrackedSLO] = {}
        self._lock = threading.Lock()
        registry = registry if registry is not None else get_registry()
        self._burn_gauge = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per objective and trailing window",
            ("slo", "window"),
        )
        self._state_gauge = registry.gauge(
            "repro_slo_state",
            "Alert state per objective (0=ok, 1=warn, 2=page)",
            ("slo",),
        )

    def add(self, target: SLOTarget) -> SLOTarget:
        """Register one objective (idempotent per name)."""
        with self._lock:
            if target.name not in self._tracked:
                self._tracked[target.name] = _TrackedSLO(target, self.windows[-1])
        return target

    @property
    def targets(self) -> List[SLOTarget]:
        return [tracked.target for tracked in self._tracked.values()]

    def _classify(self, burns: Dict[str, float]) -> str:
        values = list(burns.values())
        if all(burn >= self.page_burn for burn in values):
            return STATE_PAGE
        if all(burn >= self.warn_burn for burn in values):
            return STATE_WARN
        return STATE_OK

    def evaluate(self) -> Dict[str, Any]:
        """Sample every objective now; update gauges/states; return the report.

        Cheap enough to run on every scrape: one counts() read and a few
        subtractions per objective.
        """
        now = self._clock()
        report: Dict[str, Any] = {
            "windows_seconds": list(self.windows),
            "warn_burn": self.warn_burn,
            "page_burn": self.page_burn,
            "objectives": [],
        }
        with self._lock:
            tracked_items = list(self._tracked.items())
        for name, tracked in tracked_items:
            good, total = tracked.observe(now)
            burns = {
                f"{int(window)}s": tracked.window_burn(now, window)
                for window in self.windows
            }
            new_state = self._classify(burns)
            old_state = tracked.state
            if new_state != old_state:
                tracked.state = new_state
                tracked.transitions.append(
                    {"at": now, "from": old_state, "to": new_state, "burns": dict(burns)}
                )
                if self.on_transition is not None:
                    self.on_transition(name, old_state, new_state, burns)
            for window_name, burn in burns.items():
                self._burn_gauge.labels(slo=name, window=window_name).set(burn)
            self._state_gauge.labels(slo=name).set(_STATE_VALUES[new_state])
            compliance = good / total if total > 0 else 1.0
            report["objectives"].append(
                {
                    "name": name,
                    "description": tracked.target.description,
                    "objective": tracked.target.objective,
                    "state": new_state,
                    "burn_rates": burns,
                    "good": good,
                    "total": total,
                    "compliance": compliance,
                    "budget_remaining": (
                        max(1.0 - (1.0 - compliance) / tracked.target.error_budget, 0.0)
                        if total > 0
                        else 1.0
                    ),
                    "transitions": len(tracked.transitions),
                }
            )
        return report

    def transitions(self, name: str) -> List[Dict[str, Any]]:
        """The recorded state transitions of one objective."""
        return list(self._tracked[name].transitions)

    def state(self, name: str) -> str:
        """Current alert state of one objective."""
        return self._tracked[name].state

    def __repr__(self) -> str:
        return f"<SLOEngine objectives={len(self._tracked)} windows={self.windows}>"
