"""repro.obs — unified observability: metrics, tracing, exposition.

The telemetry substrate threaded through every layer of the stack
(columnar kernels → execution core → serving engine/executor → service):

* :mod:`~repro.obs.metrics` — a low-overhead registry of named counters,
  gauges, and fixed-bucket histograms with label support, a global enable
  switch, and ``dump()``/``merge()``/``diff()`` for folding pool-worker
  deltas back into the parent process;
* :mod:`~repro.obs.trace` — sampled per-query stage waterfalls
  (:class:`Tracer` / :class:`QueryTrace`), the thread-active-trace hook
  deep layers record into, and the bounded :class:`SlowQueryLog`;
* :mod:`~repro.obs.export` — Prometheus text exposition (v0.0.4) and the
  :func:`dump` snapshot API for offline/benchmark use.

Quickstart
----------
>>> from repro import obs
>>> qps = obs.get_registry().counter("my_queries_total", "Queries served")
>>> qps.inc()
>>> obs.dump()["my_queries_total"]["samples"][0]["value"]
1.0
>>> print(obs.prometheus_text().splitlines()[0])  # doctest: +SKIP
# HELP my_queries_total Queries served
"""

from repro.obs.export import prometheus_text, snapshot
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_enabled,
)
from repro.obs.trace import (
    QueryTrace,
    SlowQueryLog,
    Span,
    Tracer,
    activate,
    activated,
    active_trace,
    deactivate,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "metrics_enabled",
    "set_enabled",
    "QueryTrace",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "activate",
    "activated",
    "active_trace",
    "deactivate",
    "prometheus_text",
    "snapshot",
    "dump",
]


def dump(registry=None):
    """Snapshot the (default) registry as a plain JSON-able dict.

    The offline/benchmark API: one call returns every counter, gauge, and
    histogram the instrumented layers recorded so far — no server, no
    scraper.  See :func:`repro.obs.export.snapshot` for the shape.
    """
    return snapshot(registry)
