"""repro.obs — unified observability: metrics, tracing, logs, SLOs, profiling.

The telemetry substrate threaded through every layer of the stack
(columnar kernels → execution core → serving engine/executor → service),
and — since the distributed v2 — across the process boundary:

* :mod:`~repro.obs.metrics` — a low-overhead registry of named counters,
  gauges, and fixed-bucket histograms with label support, histogram
  exemplars linking buckets to sampled trace ids, a global enable switch,
  and ``dump()``/``merge()``/``diff()`` for folding pool-worker deltas
  back into the parent process;
* :mod:`~repro.obs.trace` — sampled per-query stage waterfalls
  (:class:`Tracer` / :class:`QueryTrace`), the thread-active-trace hook
  deep layers record into, the bounded :class:`SlowQueryLog`, and
  :class:`TraceContext` — the ``traceparent``-style wire codec that lets
  one head-sampled trace span client → server → engine → core;
* :mod:`~repro.obs.logging` — structured JSON-lines event logging with
  trace/request-key correlation and per-logger token-bucket rate limits;
* :mod:`~repro.obs.slo` — declarative latency/error objectives evaluated
  as multi-window burn rates (5 m / 1 h) with ok→warn→page alert states;
* :mod:`~repro.obs.profile` — a continuous sampling wall-clock profiler
  emitting flamegraph-compatible collapsed stacks;
* :mod:`~repro.obs.export` — Prometheus text exposition (v0.0.4, with
  OpenMetrics-style exemplar comments) and the :func:`dump` snapshot API
  for offline/benchmark use.

Quickstart
----------
>>> from repro import obs
>>> qps = obs.get_registry().counter("my_queries_total", "Queries served")
>>> qps.inc()
>>> obs.dump()["my_queries_total"]["samples"][0]["value"]
1.0
>>> print(obs.prometheus_text().splitlines()[0])  # doctest: +SKIP
# HELP my_queries_total Queries served
"""

from typing import Dict, Optional

from repro.obs.export import prometheus_text, snapshot
from repro.obs.logging import EventLog, StructuredLogger, get_event_log, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_enabled,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SLOEngine, SLOTarget, error_rate_slo, latency_slo
from repro.obs.trace import (
    QueryTrace,
    SlowQueryLog,
    Span,
    TraceContext,
    Tracer,
    activate,
    activated,
    active_trace,
    deactivate,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "metrics_enabled",
    "set_enabled",
    "QueryTrace",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "activated",
    "active_trace",
    "deactivate",
    "new_trace_id",
    "new_span_id",
    "EventLog",
    "StructuredLogger",
    "get_event_log",
    "get_logger",
    "SLOEngine",
    "SLOTarget",
    "latency_slo",
    "error_rate_slo",
    "SamplingProfiler",
    "prometheus_text",
    "snapshot",
    "dump",
    "register_build_info",
    "build_info",
]

#: Build/runtime identity labels, filled in by :func:`register_build_info`.
_BUILD_INFO: Dict[str, str] = {}


def register_build_info(version: str, kernel_backend: str) -> Dict[str, str]:
    """Register the ``repro_build_info`` gauge (value always 1, info style).

    Called once from :mod:`repro`'s package import with the resolved
    library version and kernel backend; the labels identify *what build*
    a scrape came from, so dashboards can split any regression by
    version/backend/python.
    """
    import platform

    info = {
        "version": str(version),
        "python_version": platform.python_version(),
        "kernel_backend": str(kernel_backend),
    }
    get_registry().gauge(
        "repro_build_info",
        "Build/runtime identity of this process (value is always 1)",
        ("version", "python_version", "kernel_backend"),
    ).labels(**info).set(1.0)
    _BUILD_INFO.clear()
    _BUILD_INFO.update(info)
    return info


def build_info() -> Dict[str, str]:
    """The labels registered by :func:`register_build_info` (may be empty)."""
    return dict(_BUILD_INFO)


def dump(registry: Optional[MetricsRegistry] = None):
    """Snapshot the (default) registry as a plain JSON-able dict.

    The offline/benchmark API: one call returns every counter, gauge, and
    histogram the instrumented layers recorded so far — no server, no
    scraper.  See :func:`repro.obs.export.snapshot` for the shape.
    """
    return snapshot(registry)
