"""Per-query structured tracing: sampled stage waterfalls + slow-query log.

A :class:`QueryTrace` records the *stage waterfall* of one query's trip
through the stack — admission → decode → batcher (queue wait → score,
with the engine's cache-probe / bound-filter / verify sub-stages nested
below) → serialize — with monotonic-clock timings.  Traces are **sampled**
(:class:`Tracer`): the unsampled hot path costs one random draw and one
branch, so the default 1% rate is essentially free while still yielding a
steady stream of fully-timed exemplar queries.

Stage conventions:

* depth 0 — the handler-level stages whose durations partition the
  end-to-end latency (the acceptance criterion: depth-0 durations sum to
  within 10% of the recorded total);
* depth 1 — sub-stages nested inside a depth-0 stage (queue wait and
  scoring inside ``batcher``);
* depth 2+ — engine/core internals (bound filter, verification, LUT
  classification) copied in from the batch-level trace.

Deep layers (:mod:`repro.core.plan`, :class:`~repro.serving.engine.BatchQueryEngine`)
never receive a trace argument; they record into the **thread-active**
trace (:func:`activate` / :func:`active_trace`, one ``threading.local``
read when unsampled) installed by whoever owns the query — the engine's
batch path activates the batch trace inside the scoring thread, so core
instrumentation works unchanged for direct engine calls, the executor,
and the service.

:class:`SlowQueryLog` is the tail-latency companion: queries whose
end-to-end latency exceeds a configurable threshold are appended to a
bounded ring together with their waterfall (when sampled), exposed by the
service's ``slow`` admin command.

Distributed traces (:class:`TraceContext`): every trace carries a 128-bit
``trace_id`` and a 64-bit ``span_id``; :meth:`QueryTrace.context` exports
them (plus the head-sampling decision) as a W3C-``traceparent``-style
string — ``00-<trace_id>-<span_id>-<flags>`` — that rides the wire in the
service protocol's optional ``trace`` field.  A server (or, later, a
router hop) joins the propagated context via
:meth:`Tracer.sample(..., context=...)`: the *head* sampling decision
wins, so a sampled client query is traced at every hop regardless of the
hop's own sample rate, and the per-process waterfalls correlate into one
end-to-end tree by shared ``trace_id``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "Span",
    "QueryTrace",
    "TraceContext",
    "Tracer",
    "SlowQueryLog",
    "new_trace_id",
    "new_span_id",
    "activate",
    "deactivate",
    "active_trace",
    "activated",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars (never all-zero)."""
    value = os.urandom(16).hex()
    return value if value != "0" * 32 else new_trace_id()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars (never all-zero)."""
    value = os.urandom(8).hex()
    return value if value != "0" * 16 else new_span_id()


class TraceContext:
    """The propagated identity of a distributed trace: ids + sampling flag.

    Serialized as a W3C-``traceparent``-style string —
    ``00-<trace_id:32hex>-<span_id:16hex>-<flags:2hex>`` with flag bit 0
    carrying the head sampling decision — so the service's ``trace`` frame
    field stays forward-compatible with the planned router→backend hop
    (each hop re-parents by substituting its own span id, keeping the
    trace id).
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    VERSION = "00"

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    def to_traceparent(self) -> str:
        """Render as ``00-<trace_id>-<span_id>-<flags>``."""
        return (
            f"{self.VERSION}-{self.trace_id}-{self.span_id}-"
            f"{'01' if self.sampled else '00'}"
        )

    @classmethod
    def parse(cls, value: Any) -> Optional["TraceContext"]:
        """Parse a traceparent string; ``None`` for anything malformed.

        Lenient by design: a bad ``trace`` field must never reject a query
        — the request is simply served untraced.  Unknown future versions
        are accepted (ids still correlate); ``ff`` is reserved-invalid.
        """
        if not isinstance(value, str):
            return None
        parts = value.split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
            return None
        try:
            flag_bits = int(flags, 16)
            int(trace_id, 16)
            int(span_id, 16)
            int(version, 16)
        except ValueError:
            return None
        if version.lower() == "ff":
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id.lower(), span_id.lower(), sampled=bool(flag_bits & 0x01))

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    def __repr__(self) -> str:
        return f"<TraceContext {self.to_traceparent()}>"


class Span:
    """One timed stage of a trace: name, offset from trace start, duration.

    ``tags`` (optional, usually absent) carries small structured
    annotations — the retry/hedge attempt number and outcome on client
    attempt spans — without growing the common four-field case.
    """

    __slots__ = ("name", "offset", "seconds", "depth", "tags")

    def __init__(
        self,
        name: str,
        offset: float,
        seconds: float,
        depth: int = 0,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.offset = offset
        self.seconds = seconds
        self.depth = depth
        self.tags = tags

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "offset_ms": self.offset * 1e3,
            "duration_ms": self.seconds * 1e3,
            "depth": self.depth,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    def __repr__(self) -> str:
        return f"<Span {self.name} +{self.offset * 1e3:.2f}ms {self.seconds * 1e3:.3f}ms d{self.depth}>"


class QueryTrace:
    """The recorded stage waterfall of one query.

    Spans are appended in completion order; :attr:`total_seconds` is
    stamped by :meth:`finish`.  ``detail`` carries query identity (τ̂, γ,
    top-k, connection) for the slow log and the admin ``traces`` command.

    Each trace owns a distributed identity: ``trace_id`` (shared by every
    process that handled the query) and ``span_id`` (this process's hop).
    A root trace generates both; a trace joined from a propagated
    :class:`TraceContext` inherits the trace id and records the sender's
    span id as ``parent_span_id``.
    """

    __slots__ = (
        "spans",
        "detail",
        "started_at",
        "total_seconds",
        "trace_id",
        "span_id",
        "parent_span_id",
        "_owner",
    )

    def __init__(
        self,
        detail: Optional[Dict[str, Any]] = None,
        owner: Optional["Tracer"] = None,
        *,
        context: Optional[TraceContext] = None,
    ):
        self.spans: List[Span] = []
        self.detail: Dict[str, Any] = detail or {}
        self.started_at = time.perf_counter()
        self.total_seconds: Optional[float] = None
        self.trace_id = context.trace_id if context is not None else new_trace_id()
        self.span_id = new_span_id()
        self.parent_span_id = context.span_id if context is not None else None
        self._owner = owner

    def context(self) -> TraceContext:
        """The propagation context for the next hop (this span as parent)."""
        return TraceContext(self.trace_id, self.span_id, sampled=True)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        seconds: float,
        *,
        depth: int = 0,
        offset: Optional[float] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record an externally-timed stage; offset defaults to 'now - duration'."""
        if offset is None:
            offset = max(time.perf_counter() - self.started_at - seconds, 0.0)
        span = Span(name, offset, seconds, depth, tags)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, depth: int = 0):
        """Context manager timing one stage with the monotonic clock."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            end = time.perf_counter()
            self.spans.append(Span(name, start - self.started_at, end - start, depth))

    def graft(self, other: "QueryTrace", *, depth_shift: int = 1) -> None:
        """Copy another trace's spans in, shifted one nesting level down.

        Used to embed the batch-level engine waterfall into each sampled
        query's trace: the batch stages become depth ``original + shift``
        children of the query's ``batcher`` stage.
        """
        base = max(time.perf_counter() - self.started_at - (other.elapsed_seconds()), 0.0)
        for span in other.spans:
            self.spans.append(
                Span(
                    span.name,
                    base + span.offset,
                    span.seconds,
                    span.depth + depth_shift,
                    None if span.tags is None else dict(span.tags),
                )
            )

    def finish(self, total_seconds: Optional[float] = None) -> "QueryTrace":
        """Stamp the end-to-end duration and publish to the owning tracer."""
        self.total_seconds = (
            total_seconds
            if total_seconds is not None
            else time.perf_counter() - self.started_at
        )
        if self._owner is not None:
            self._owner._record(self)
        return self

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def elapsed_seconds(self) -> float:
        """Total if finished, else the live monotonic elapsed time."""
        if self.total_seconds is not None:
            return self.total_seconds
        return time.perf_counter() - self.started_at

    def stage_seconds(self, depth: Optional[int] = 0) -> Dict[str, float]:
        """Per-stage summed durations, optionally restricted to one depth."""
        out: Dict[str, float] = {}
        for span in self.spans:
            if depth is None or span.depth == depth:
                out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    def waterfall_coverage(self) -> float:
        """Fraction of the end-to-end latency covered by depth-0 stages."""
        total = self.total_seconds
        if not total:
            return 0.0
        return sum(span.seconds for span in self.spans if span.depth == 0) / total

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (admin ``traces`` command / slow log entries)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "total_ms": None if self.total_seconds is None else self.total_seconds * 1e3,
            "detail": dict(self.detail),
            "spans": [span.to_dict() for span in sorted(self.spans, key=lambda s: s.offset)],
        }

    def render(self) -> str:
        """Human-readable waterfall (quickstart example / debugging)."""
        lines = []
        total = self.elapsed_seconds()
        lines.append(f"trace {self.detail or ''} total={total * 1e3:.3f}ms")
        for span in sorted(self.spans, key=lambda s: (s.offset, s.depth)):
            lines.append(
                f"  {'  ' * span.depth}{span.name:<24}"
                f" +{span.offset * 1e3:8.3f}ms  {span.seconds * 1e3:8.3f}ms"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<QueryTrace spans={len(self.spans)} total={self.total_seconds}>"


class Tracer:
    """Samples queries for tracing and keeps a bounded ring of finished traces.

    ``sample_rate`` ∈ [0, 1]; :meth:`sample` returns a live
    :class:`QueryTrace` for roughly that fraction of calls and ``None``
    for the rest — the caller's unsampled path is one branch.
    """

    def __init__(self, sample_rate: float = 0.01, *, keep: int = 64, seed: Optional[int] = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.seen = 0
        self.sampled = 0
        self.joined = 0
        self.recent: Deque[QueryTrace] = deque(maxlen=int(keep))
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    def sample(
        self,
        detail: Optional[Dict[str, Any]] = None,
        *,
        context: Optional[TraceContext] = None,
    ) -> Optional[QueryTrace]:
        """Return a new trace for ~``sample_rate`` of calls, else ``None``.

        With a propagated ``context`` the *head* sampling decision wins:
        a sampled upstream context always yields a joined trace (sharing
        its trace id, recording its span id as parent) regardless of this
        tracer's own rate, and an unsampled one never does — so one
        decision at the client governs the whole distributed tree.
        """
        self.seen += 1
        if context is not None:
            if not context.sampled:
                return None
            self.sampled += 1
            self.joined += 1
            return QueryTrace(detail, owner=self, context=context)
        if self.sample_rate <= 0.0 or self._random.random() >= self.sample_rate:
            return None
        self.sampled += 1
        return QueryTrace(detail, owner=self)

    def _record(self, trace: QueryTrace) -> None:
        with self._lock:
            self.recent.append(trace)

    def recent_traces(self, limit: int = 16) -> List[Dict[str, Any]]:
        """The most recent finished traces, newest first, as dicts."""
        with self._lock:
            newest = list(self.recent)[-int(limit):]
        return [trace.to_dict() for trace in reversed(newest)]

    def find(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every retained finished trace with this ``trace_id`` (oldest first).

        The cross-process correlation primitive: given the trace id of a
        client root span, the server's ``traces`` admin reply (or this
        method in-process) yields the hop's matching waterfalls.
        """
        with self._lock:
            matches = [trace for trace in self.recent if trace.trace_id == trace_id]
        return [trace.to_dict() for trace in matches]

    def as_dict(self) -> Dict[str, float]:
        return {
            "sample_rate": self.sample_rate,
            "seen": self.seen,
            "sampled": self.sampled,
            "joined": self.joined,
            "retained": len(self.recent),
        }

    def __repr__(self) -> str:
        return f"<Tracer rate={self.sample_rate} sampled={self.sampled}/{self.seen}>"


# ---------------------------------------------------------------------- #
# thread-active trace: how deep layers find the current query's trace
# ---------------------------------------------------------------------- #
_ACTIVE = threading.local()


def activate(trace: Optional[QueryTrace]) -> None:
    """Install ``trace`` as the calling thread's active trace (None clears)."""
    _ACTIVE.trace = trace


def deactivate() -> None:
    """Clear the calling thread's active trace."""
    _ACTIVE.trace = None


def active_trace() -> Optional[QueryTrace]:
    """The calling thread's active trace, or ``None`` (the hot-path check)."""
    return getattr(_ACTIVE, "trace", None)


@contextmanager
def activated(trace: Optional[QueryTrace]):
    """Scope ``trace`` as the thread-active trace, restoring the previous one."""
    previous = active_trace()
    _ACTIVE.trace = trace
    try:
        yield trace
    finally:
        _ACTIVE.trace = previous


# ---------------------------------------------------------------------- #
# slow-query log
# ---------------------------------------------------------------------- #
class SlowQueryLog:
    """Bounded ring of queries slower than a configurable threshold.

    Entries carry the end-to-end latency, the query's identity detail, and
    — when the query happened to be trace-sampled — its full stage
    waterfall.  Appends are O(1) (``deque(maxlen=…)``), reads snapshot
    under a lock, so a scrape racing live traffic sees a consistent list.
    """

    def __init__(self, threshold_ms: float = 250.0, capacity: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be a positive integer")
        self.threshold_ms = float(threshold_ms)
        self.capacity = int(capacity)
        self.total_slow = 0
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(
        self,
        latency_seconds: float,
        detail: Optional[Dict[str, Any]] = None,
        trace: Optional[QueryTrace] = None,
    ) -> bool:
        """Append one query if it crossed the threshold; return whether it did."""
        if latency_seconds * 1e3 < self.threshold_ms:
            return False
        entry = {
            "latency_ms": latency_seconds * 1e3,
            "recorded_at": time.time(),
            "detail": dict(detail or {}),
            "trace": None if trace is None else trace.to_dict(),
        }
        with self._lock:
            self.total_slow += 1
            self._entries.append(entry)
        return True

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest-recent entries, newest first."""
        with self._lock:
            newest = list(self._entries)
        newest.reverse()
        return newest if limit is None else newest[: int(limit)]

    def as_dict(self) -> Dict[str, Any]:
        """Summary + entries document for the ``slow`` admin command."""
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "total_slow": self.total_slow,
            "entries": self.entries(),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog >={self.threshold_ms}ms "
            f"kept={len(self._entries)}/{self.capacity} total={self.total_slow}>"
        )
