"""Low-overhead metrics registry: counters, gauges, fixed-bucket histograms.

The observability substrate of the whole stack (see :mod:`repro.obs`): every
layer — columnar kernels, execution core, serving engine, executor, service
— increments metrics registered here, and the exposition layer
(:mod:`repro.obs.export`) renders one registry into Prometheus text or a
plain snapshot dict.

Design constraints, in order:

1. **Hot-path cost.**  ``Counter.inc`` / ``Histogram.observe`` sit inside
   the per-query serving path (thousands of calls per second), so they are
   plain attribute arithmetic guarded by one module-global enable flag —
   no locks, no dict lookups, no string formatting.  Instrumented modules
   bind their label children **once at import time** so the hot path never
   resolves a label set.  Under CPython the ``+=`` on the int/float slots
   is not atomic across threads; concurrent increments may rarely lose a
   tick, which is the classic statsd trade-off — monotonicity of *observed*
   scrapes is preserved because readers only ever see some prefix of the
   true count (validated by the service-level concurrency test).
2. **Labels.**  A metric family created with ``labelnames`` hands out
   per-label-value children via :meth:`_MetricFamily.labels`; children are
   created under a lock (creation is rare), then cached and returned
   lock-free.
3. **Aggregation.**  :meth:`MetricsRegistry.dump` snapshots every series
   into plain picklable data, :meth:`MetricsRegistry.merge` folds such a
   snapshot back in (counters and histograms add, gauges take ``max``),
   and :meth:`MetricsRegistry.diff` subtracts two snapshots — the
   mechanism by which process-pool workers return their per-task metric
   deltas to the parent (see :class:`~repro.serving.executor.ServingExecutor`).

``set_enabled(False)`` turns every increment into an early return — the
switch the overhead benchmark uses to price the instrumentation itself.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "set_enabled",
    "metrics_enabled",
]

#: Latency histogram bounds in seconds: 50µs .. 10s, roughly log-spaced —
#: wide enough for both in-process kernel timings and end-to-end service
#: latencies without per-metric tuning.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size/count histogram bounds (batch sizes, candidate counts): powers of two.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

#: Fraction histogram bounds (selectivity, hit rates): 0..1 in coarse steps.
DEFAULT_RATIO_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0,
)

#: Module-global kill switch read by every hot-path increment.
_ENABLED = True


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable metric recording; return the previous state.

    Used by the overhead benchmark to measure the instrumented stack
    against itself with recording compiled down to one boolean check.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def metrics_enabled() -> bool:
    """Whether metric recording is currently on (default: on)."""
    return _ENABLED


class Counter:
    """Monotonically increasing value (one labeled series of a family)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0 for Prometheus semantics)."""
        if _ENABLED:
            self.value += amount

    def state(self) -> float:
        return self.value

    def _merge_state(self, state: float) -> None:
        self.value += state


class Gauge:
    """Value that can go up and down (queue depth, model version, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        if _ENABLED:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if _ENABLED:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if _ENABLED:
            self.value -= amount

    def state(self) -> float:
        return self.value

    def _merge_state(self, state: float) -> None:
        # Gauges have no universally correct multi-worker fold; ``max`` is
        # the conservative choice for the gauges this stack exports
        # (versions, durations, depths) and is documented in the module
        # docstring.  Counter-like gauges should be counters.
        self.value = max(self.value, state)


class Histogram:
    """Fixed-bucket histogram with a sum and a count.

    ``bounds`` are the *upper* bucket edges (``le`` labels); an implicit
    ``+Inf`` bucket catches everything above the last bound.  ``observe``
    is one bisect plus three attribute writes — cheap enough for per-query
    hot paths.

    **Exemplars.**  An observation made with ``trace_id=...`` additionally
    stamps that trace id (plus the observed value) as the bucket's
    exemplar — the most recent sampled trace that landed there — so a bad
    latency bucket links straight to a concrete stage waterfall.
    Exemplars are *process-local* annotations: they ride the JSON
    ``snapshot()`` and the OpenMetrics-style exposition comments, but are
    deliberately excluded from :meth:`state` so the worker dump/merge/diff
    delta protocol is byte-for-byte unchanged.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count", "exemplars")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: bucket index -> (trace_id, observed value); written only on the
        #: (rare) sampled path, read by the exposition layer.
        self.exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        if _ENABLED:
            slot = bisect_left(self.bounds, value)
            self.bucket_counts[slot] += 1
            self.sum += value
            self.count += 1
            if trace_id is not None:
                self.exemplars[slot] = (trace_id, value)

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-``le`` counts (Prometheus exposition form)."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) by linear interpolation in-bucket.

        Good enough for dashboards/SLO checks; exact per-sample percentiles
        stay in :class:`~repro.serving.stats.ServingStats`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for slot, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = 0.0 if slot == 0 else self.bounds[slot - 1]
                upper = self.bounds[slot] if slot < len(self.bounds) else lower * 2 or 1.0
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(fraction, 1.0)
        return self.bounds[-1] if self.bounds else 0.0

    def state(self) -> Tuple[Tuple[float, ...], List[int], float, int]:
        return (self.bounds, list(self.bucket_counts), self.sum, self.count)

    def _merge_state(self, state) -> None:
        bounds, counts, total, count = state
        if tuple(bounds) != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        for slot, value in enumerate(counts):
            self.bucket_counts[slot] += value
        self.sum += total
        self.count += count


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _MetricFamily:
    """One registered metric name: its metadata plus per-label-set children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not labelnames:
            # Label-less families are their own single child.
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets if self.buckets is not None else DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """Return (creating if needed) the child for one label-value set."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
        return child

    @property
    def default(self):
        """The label-less child (only valid for families without labels)."""
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels {self.labelnames}")
        return self._children[()]

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Stable (label values, child) listing for exposition."""
        return sorted(self._children.items())


class MetricsRegistry:
    """Named metric families with get-or-create registration and merging.

    One process-global default registry (:func:`get_registry`) backs all
    built-in instrumentation, mirroring the Prometheus client convention;
    isolated registries can be constructed for tests.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registration (get-or-create; kind/label mismatches are errors)
    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _MetricFamily:
        labelnames = tuple(labelnames)
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _MetricFamily(name, help_text, kind, labelnames, buckets)
                    self._families[name] = family
        if family.kind != kind or family.labelnames != labelnames:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with labels "
                f"{family.labelnames}; requested {kind} with {labelnames}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()):
        """Register (or fetch) a counter family; label-less returns the Counter."""
        family = self._family(name, help_text, "counter", labelnames)
        return family if family.labelnames else family.default

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()):
        """Register (or fetch) a gauge family; label-less returns the Gauge."""
        family = self._family(name, help_text, "gauge", labelnames)
        return family if family.labelnames else family.default

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        """Register (or fetch) a histogram family; label-less returns it directly."""
        family = self._family(name, help_text, "histogram", labelnames, buckets)
        return family if family.labelnames else family.default

    # ------------------------------------------------------------------ #
    # introspection / aggregation
    # ------------------------------------------------------------------ #
    def families(self) -> List[_MetricFamily]:
        """Registered families in name order (exposition iterates this)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def dump(self) -> Dict:
        """Snapshot every series into plain picklable data.

        Shape: ``{name: {"kind", "help", "labelnames", "buckets",
        "series": {label_values_tuple: state}}}`` where counter/gauge state
        is a float and histogram state is ``(bounds, counts, sum, count)``.
        """
        out: Dict = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": family.labelnames,
                "buckets": family.buckets,
                "series": {
                    labels: child.state() for labels, child in family.series()
                },
            }
        return out

    def merge(self, snapshot: Dict) -> "MetricsRegistry":
        """Fold a :meth:`dump` snapshot in: counters/histograms add, gauges max.

        Families absent from this registry are created from the snapshot's
        metadata — a parent process can merge a worker's dump without
        having imported the modules that registered the worker's metrics.
        """
        for name, data in snapshot.items():
            family = self._family(
                name, data["help"], data["kind"], data["labelnames"], data["buckets"]
            )
            for label_values, state in data["series"].items():
                if family.labelnames:
                    child = family.labels(**dict(zip(family.labelnames, label_values)))
                else:
                    child = family.default
                child._merge_state(state)
        return self

    @staticmethod
    def diff(before: Dict, after: Dict) -> Dict:
        """Return ``after - before`` as a mergeable snapshot.

        Series/families absent from ``before`` pass through unchanged;
        gauge series keep their ``after`` value (point-in-time semantics).
        The result is what a pool worker returns as its per-task delta.
        """
        out: Dict = {}
        for name, data in after.items():
            base = before.get(name)
            series: Dict = {}
            for label_values, state in data["series"].items():
                previous = None if base is None else base["series"].get(label_values)
                if previous is None or data["kind"] == "gauge":
                    series[label_values] = state
                elif data["kind"] == "histogram":
                    bounds, counts, total, count = state
                    _, p_counts, p_total, p_count = previous
                    series[label_values] = (
                        bounds,
                        [c - p for c, p in zip(counts, p_counts)],
                        total - p_total,
                        count - p_count,
                    )
                else:
                    series[label_values] = state - previous
            out[name] = {**data, "series": series}
        return out

    def reset(self) -> None:
        """Drop every registered family (test isolation helper).

        Children previously handed out by :meth:`labels` keep functioning
        but are no longer reachable from the registry — instrumented
        modules that bound children at import time keep counting into
        orphans, so production code should never call this.
        """
        with self._lock:
            self._families.clear()

    def __repr__(self) -> str:
        return f"<MetricsRegistry families={len(self._families)}>"


#: The process-global default registry backing all built-in instrumentation.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default :class:`MetricsRegistry`."""
    return REGISTRY
