"""Structured JSON-lines event logging with trace correlation.

The third leg of the observability stack (metrics say *how much*, traces
say *where the time went*): discrete events — reloads, chaos injections,
slow queries, SLO state changes — are emitted as structured records that
correlate with the other two legs through ``trace_id`` and
``request_key`` fields.

Design, mirroring :mod:`repro.obs.metrics`:

* **One process-wide :class:`EventLog`** holds a bounded in-memory ring
  (served by the service's ``logs`` admin command) and optionally mirrors
  every record to a stream as one JSON object per line — the format log
  shippers ingest directly.
* **:class:`StructuredLogger`** is the per-subsystem handle
  (:func:`get_logger`), carrying the logger name and a **token-bucket
  rate limit**: an event storm (a crash-looping reload, a chaos schedule
  gone wild) degrades into a counted drop instead of unbounded memory /
  I/O pressure.  Dropped counts are themselves observable
  (``repro_log_events_total{outcome="dropped"}`` and the ring summary).
* **Injectable clocks** everywhere (wall clock for timestamps, monotonic
  for the rate limiter) so tests exercise rate limiting deterministically.

Record shape (flat, JSON-able)::

    {"ts": <unix seconds>, "level": "info", "logger": "service",
     "event": "engine_reloaded", "trace_id"?, "request_key"?, ...fields}
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.metrics import get_registry

__all__ = [
    "EventLog",
    "StructuredLogger",
    "get_event_log",
    "get_logger",
]

LEVELS = ("debug", "info", "warning", "error")

_LOG_EVENTS = get_registry().counter(
    "repro_log_events_total", "Structured log events by outcome", ("outcome",)
)
_LOG_EMITTED = _LOG_EVENTS.labels(outcome="emitted")
_LOG_DROPPED = _LOG_EVENTS.labels(outcome="dropped")


class EventLog:
    """Process-wide bounded ring of structured events + optional stream sink.

    Appends are O(1) under a lock; reads snapshot the ring so a ``logs``
    admin scrape racing live traffic sees a consistent list.  ``stream``
    (when attached) receives every record as one JSON line — failures to
    write the stream never break the emitting request path.
    """

    def __init__(
        self,
        capacity: int = 512,
        stream: Optional[Any] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be a positive integer")
        self.capacity = int(capacity)
        self.total_events = 0
        self.total_dropped = 0
        self._events: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    def attach_stream(self, stream: Optional[Any]) -> None:
        """Mirror subsequent events to ``stream`` as JSON lines (None detaches)."""
        with self._lock:
            self._stream = stream

    def emit(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one record (stamping ``ts`` if absent); return it."""
        if "ts" not in record:
            record["ts"] = self._clock()
        with self._lock:
            self.total_events += 1
            self._events.append(record)
            stream = self._stream
        _LOG_EMITTED.inc()
        if stream is not None:
            try:
                stream.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
            except (OSError, ValueError):  # closed/broken sink: ring still has it
                pass
        return record

    def count_dropped(self, amount: int = 1) -> None:
        """Account events suppressed by a logger's rate limiter."""
        with self._lock:
            self.total_dropped += amount
        _LOG_DROPPED.inc(amount)

    def events(
        self,
        limit: Optional[int] = None,
        *,
        logger: Optional[str] = None,
        level: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Newest-first records, optionally filtered by logger/level/trace_id."""
        with self._lock:
            records = list(self._events)
        records.reverse()
        if logger is not None:
            records = [r for r in records if r.get("logger") == logger]
        if level is not None:
            records = [r for r in records if r.get("level") == level]
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        return records if limit is None else records[: int(limit)]

    def as_dict(self, limit: Optional[int] = 64, **filters: Optional[str]) -> Dict[str, Any]:
        """Summary + recent records (the ``logs`` admin command document)."""
        return {
            "capacity": self.capacity,
            "total_events": self.total_events,
            "total_dropped": self.total_dropped,
            "events": self.events(limit, **filters),
        }

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"<EventLog kept={len(self._events)}/{self.capacity} "
            f"total={self.total_events} dropped={self.total_dropped}>"
        )


class StructuredLogger:
    """Named, rate-limited emitter into an :class:`EventLog`.

    The token bucket holds ``burst`` tokens refilled at
    ``rate_limit_per_sec``; each event spends one.  An empty bucket drops
    the event (counted, never blocking) — the correct failure mode for a
    log path sitting next to a serving hot path.  ``rate_limit_per_sec=0``
    disables limiting.
    """

    def __init__(
        self,
        name: str,
        log: Optional[EventLog] = None,
        *,
        rate_limit_per_sec: float = 50.0,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_limit_per_sec < 0:
            raise ValueError("rate_limit_per_sec must be non-negative")
        self.name = str(name)
        self.log = log if log is not None else get_event_log()
        self.rate_limit_per_sec = float(rate_limit_per_sec)
        self.burst = (
            int(burst)
            if burst is not None
            else max(int(self.rate_limit_per_sec) * 2, 10)
        )
        self.dropped = 0
        self._tokens = float(self.burst)
        self._clock = clock
        self._last_refill = clock()
        self._lock = threading.Lock()

    def _take_token(self) -> bool:
        if self.rate_limit_per_sec <= 0:
            return True
        with self._lock:
            now = self._clock()
            elapsed = max(now - self._last_refill, 0.0)
            self._last_refill = now
            self._tokens = min(
                self._tokens + elapsed * self.rate_limit_per_sec, float(self.burst)
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def event(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: Optional[str] = None,
        request_key: Optional[str] = None,
        **fields: Any,
    ) -> Optional[Dict[str, Any]]:
        """Emit one structured event; returns the record, or None if dropped."""
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r} (expected one of {LEVELS})")
        if not self._take_token():
            self.dropped += 1
            self.log.count_dropped()
            return None
        record: Dict[str, Any] = {"level": level, "logger": self.name, "event": event}
        if trace_id is not None:
            record["trace_id"] = trace_id
        if request_key is not None:
            record["request_key"] = request_key
        record.update(fields)
        return self.log.emit(record)

    def debug(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.event(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.event(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.event(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.event(event, level="error", **fields)

    def __repr__(self) -> str:
        return (
            f"<StructuredLogger {self.name!r} "
            f"rate={self.rate_limit_per_sec}/s dropped={self.dropped}>"
        )


#: The process-global default event log (mirrors the metrics REGISTRY).
EVENT_LOG = EventLog()

_LOGGERS: Dict[str, StructuredLogger] = {}
_LOGGERS_LOCK = threading.Lock()


def get_event_log() -> EventLog:
    """The process-global default :class:`EventLog`."""
    return EVENT_LOG


def get_logger(name: str, **kwargs: Any) -> StructuredLogger:
    """Get-or-create the named :class:`StructuredLogger` on the default log.

    The first call for a name fixes its configuration; later calls return
    the cached instance (``kwargs`` are then ignored, as with the stdlib's
    ``logging.getLogger``).
    """
    logger = _LOGGERS.get(name)
    if logger is None:
        with _LOGGERS_LOCK:
            logger = _LOGGERS.get(name)
            if logger is None:
                logger = StructuredLogger(name, EVENT_LOG, **kwargs)
                _LOGGERS[name] = logger
    return logger
