"""Metric exposition: Prometheus text format v0.0.4 and snapshot dicts.

Two consumers, two renderings of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`prometheus_text` — the machine-scrapeable form served by the
  service's plain-HTTP ``/metrics`` listener and the ``prometheus`` admin
  command.  Follows the text exposition format v0.0.4: one ``# HELP`` /
  ``# TYPE`` header per family, escaped label values, histograms as
  cumulative ``_bucket{le=…}`` series plus ``_sum`` / ``_count``.
* :func:`snapshot` — a plain JSON-able dict (``repro.obs.dump()``) for
  offline runs and benchmarks that want the same numbers without a
  scraper: label tuples become nested ``{"labels": {...}, "value": ...}``
  sample records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["prometheus_text", "snapshot"]

#: Content type a /metrics HTTP response must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(labelnames, label_values, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, label_values)
    ]
    if extra:
        pairs.extend(f'{name}="{_escape_label_value(str(value))}"' for name, value in extra.items())
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format v0.0.4."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help or family.name)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.series():
            labels = _render_labels(family.labelnames, label_values)
            if family.kind == "histogram":
                cumulative = child.cumulative_counts()
                exemplars = child.exemplars
                for slot, (bound, count) in enumerate(zip(child.bounds, cumulative)):
                    bucket_labels = _render_labels(
                        family.labelnames, label_values, {"le": _format_value(bound)}
                    )
                    lines.append(f"{family.name}_bucket{bucket_labels} {count}")
                    exemplar = exemplars.get(slot)
                    if exemplar is not None:
                        # OpenMetrics-style exemplar on its own comment line:
                        # a v0.0.4 scraper skips it, an exemplar-aware reader
                        # links the bucket to a sampled trace's waterfall.
                        trace_id, observed = exemplar
                        lines.append(
                            f'# {{trace_id="{_escape_label_value(trace_id)}"}} '
                            f"{_format_value(observed)}"
                        )
                inf_labels = _render_labels(family.labelnames, label_values, {"le": "+Inf"})
                lines.append(f"{family.name}_bucket{inf_labels} {cumulative[-1]}")
                inf_exemplar = exemplars.get(len(child.bounds))
                if inf_exemplar is not None:
                    trace_id, observed = inf_exemplar
                    lines.append(
                        f'# {{trace_id="{_escape_label_value(trace_id)}"}} '
                        f"{_format_value(observed)}"
                    )
                lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """JSON-able snapshot of every metric (the ``repro.obs.dump()`` API).

    Shape: ``{name: {"kind", "help", "samples": [{"labels": {...},
    ...value fields...}]}}`` — counters/gauges carry ``"value"``,
    histograms carry ``"count"`` / ``"sum"`` / ``"buckets"`` (upper bound →
    cumulative count, with ``"+Inf"`` last).
    """
    registry = registry if registry is not None else get_registry()
    out: Dict[str, Any] = {}
    for family in registry.families():
        samples = []
        for label_values, child in family.series():
            labels = dict(zip(family.labelnames, label_values))
            if family.kind == "histogram":
                cumulative = child.cumulative_counts()
                buckets = {
                    _format_value(bound): count
                    for bound, count in zip(child.bounds, cumulative)
                }
                buckets["+Inf"] = cumulative[-1]
                sample = {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": buckets,
                }
                if child.exemplars:
                    bound_names = [_format_value(bound) for bound in child.bounds] + ["+Inf"]
                    sample["exemplars"] = {
                        bound_names[slot]: {"trace_id": trace_id, "value": observed}
                        for slot, (trace_id, observed) in sorted(child.exemplars.items())
                    }
                samples.append(sample)
            else:
                samples.append({"labels": labels, "value": child.value})
        out[family.name] = {"kind": family.kind, "help": family.help, "samples": samples}
    return out
