"""Continuous sampling wall-clock profiler with collapsed-stack output.

Answers the question metrics and traces cannot: *which code* is the p99
made of.  A daemon thread wakes every ``interval_ms`` and snapshots every
other thread's Python stack via ``sys._current_frames()`` — no tracing
hooks, no interpreter slowdown between samples — and aggregates the
frames into **collapsed stacks**::

    server.py:_handle_query;batcher.py:_flush;engine.py:query_batch 42

one line per distinct stack, root first, trailing sample count: exactly
the format ``flamegraph.pl`` / speedscope / inferno ingest.  At the
default 10 ms interval the cost is ~100 stack walks per second across all
threads, bounded by the overhead benchmark
(:mod:`benchmarks.test_obs_overhead`) to <10% of scoring throughput.

The profiler is fully start/stop/dump-able at runtime through the
service's ``profile`` admin command, so an operator can switch it on
against a live incident, capture a flamegraph, and switch it off — the
"continuous profiling" workflow without an agent sidecar.

Cardinality is bounded twice: stacks deeper than ``max_depth`` keep their
leaf-most frames below a ``<truncated>`` root, and once ``max_stacks``
distinct stacks exist new ones aggregate into ``<overflow>`` — memory use
cannot grow without bound under pathological workloads.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import get_registry

__all__ = ["SamplingProfiler"]

_SAMPLES = get_registry().counter(
    "repro_profile_samples_total", "Stack samples taken by the sampling profiler"
)


def _frame_name(frame) -> str:
    """``file.py:function`` — compact, flamegraph-friendly, bounded cardinality."""
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class SamplingProfiler:
    """Low-overhead wall-clock profiler over ``sys._current_frames()``.

    Parameters
    ----------
    interval_ms:
        Sleep between stack snapshots (default 10 ms ≈ 100 Hz).
    max_depth:
        Frames kept per stack (leaf-most survive truncation).
    max_stacks:
        Distinct collapsed stacks retained before aggregating into
        ``<overflow>``.
    """

    def __init__(
        self,
        interval_ms: float = 10.0,
        *,
        max_depth: int = 64,
        max_stacks: int = 10000,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if max_depth < 1 or max_stacks < 1:
            raise ValueError("max_depth and max_stacks must be positive")
        self.interval = float(interval_ms) / 1000.0
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self.samples = 0
        self.overflowed = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> bool:
        """Start sampling (idempotent); returns whether a thread was started."""
        with self._lock:
            if self.running:
                return False
            self._stop.clear()
            self.started_at = time.time()
            self.stopped_at = None
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
            return True

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop sampling and join the thread; returns whether one was running."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return False
            self._stop.set()
            self._thread = None
        thread.join(timeout)
        self.stopped_at = time.time()
        return True

    def reset(self) -> None:
        """Drop all aggregated stacks and counters (keeps running if running)."""
        with self._lock:
            self._stacks.clear()
            self.samples = 0
            self.overflowed = 0

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample_once(own_ident)

    def _sample_once(self, skip_ident: Optional[int] = None) -> int:
        """Walk every live thread's stack once; returns threads sampled."""
        frames = sys._current_frames()
        sampled = 0
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_name(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            if frame is not None:  # deeper than max_depth: keep leaf-most frames
                stack.append("<truncated>")
            stack.reverse()  # collapsed format is root-first
            key = tuple(stack)
            sampled += 1
            with self._lock:
                if key not in self._stacks and len(self._stacks) >= self.max_stacks:
                    key = ("<overflow>",)
                    self.overflowed += 1
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self.samples += 1
        _SAMPLES.inc(sampled)
        return sampled

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    def collapsed(self) -> str:
        """All aggregated stacks in collapsed format (heaviest first).

        ``root;child;leaf count`` per line — pipe straight into
        ``flamegraph.pl`` or load into speedscope.
        """
        with self._lock:
            items = sorted(self._stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in items)

    def dump(self, path) -> int:
        """Write the collapsed profile to ``path``; returns distinct stacks."""
        text = self.collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + ("\n" if text else ""))
        return text.count("\n") + 1 if text else 0

    def as_dict(self) -> Dict[str, Any]:
        """Status summary (the ``profile`` admin command's ``status`` reply)."""
        with self._lock:
            distinct = len(self._stacks)
        return {
            "running": self.running,
            "interval_ms": self.interval * 1000.0,
            "samples": self.samples,
            "distinct_stacks": distinct,
            "overflowed": self.overflowed,
            "max_depth": self.max_depth,
            "max_stacks": self.max_stacks,
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<SamplingProfiler {state} samples={self.samples} @{self.interval * 1e3:g}ms>"
