"""Incremental offline fitting: keep the priors fresh as the database grows.

The paper's offline stage (Step 1 of Algorithm 1) is priced as a one-shot
cost, but the ROADMAP's serving story adds graphs to a live
:class:`~repro.db.database.GraphDatabase` — and a prior fitted before an
addition silently mis-describes the population after it.
:class:`OfflineFitter` closes that gap:

* :meth:`fit` runs the full offline stage once (vectorized EM, optionally
  multiprocess pair sampling / grid construction) and keeps the sampled GBD
  list;
* the fitter subscribes to the database's add-hook, accumulating every
  graph added afterwards;
* :meth:`refit` samples pairs that connect the *new* graphs to the rest of
  the database, appends their GBDs to the retained sample list, refits the
  GMM over the combined samples, extends the Jeffreys grid with any
  previously unseen extended orders (:meth:`GEDPrior.update` — existing
  columns are reused), and rebuilds the estimator.  A refit is therefore
  ``O(new pairs + new orders)``, not a from-scratch offline pass;
* every successful (re)fit bumps :attr:`version`, and :meth:`snapshot`
  writes a serving snapshot stamped with that version, so a server can tell
  which offline model produced the file it loaded.

Refits are deterministic: the pair sample for version ``v`` is drawn from
``random.Random(seed, v)``-style derived streams, so two fitters fed the
same database and additions produce identical priors.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.db.database import GraphDatabase, StoredGraph
from repro.exceptions import SearchError
from repro.obs.metrics import get_registry
from repro.offline.parallel import compute_pair_gbds

_FITS = get_registry().counter(
    "repro_offline_fits_total", "Offline (re)fits completed", ("kind",)
)
_FITS_FULL = _FITS.labels(kind="full")
_FITS_INCREMENTAL = _FITS.labels(kind="incremental")
_FIT_SECONDS = get_registry().gauge(
    "repro_offline_fit_seconds", "Duration of the most recent offline (re)fit"
)
_MODEL_VERSION = get_registry().gauge(
    "repro_offline_model_version", "Version of the most recently fitted model"
)

__all__ = ["OfflineFitter", "OfflineFitReport"]


@dataclass
class OfflineFitReport:
    """Book-keeping for one (re)fit pass (the incremental Table IV entry)."""

    version: int = 0
    num_new_graphs: int = 0
    num_new_pairs: int = 0
    num_total_samples: int = 0
    new_orders: List[int] = field(default_factory=list)
    seconds: float = 0.0


class OfflineFitter:
    """Vectorized, incrementally refittable offline stage for GBDA.

    Parameters
    ----------
    database:
        The live graph database; the fitter subscribes to its add-hook.
    max_tau, num_prior_pairs, num_gmm_components, seed:
        As in :class:`~repro.core.search.GBDASearch`.
    backend:
        EM backend for the GMM fit (``"auto"``, ``"numpy"``, ``"python"``).
    num_workers:
        Worker processes for the pair-GBD / grid loops (``None`` = serial).
    refit_pairs_per_graph:
        How many sampled partners each newly added graph contributes to the
        incremental GBD sample on :meth:`refit`.
    """

    def __init__(
        self,
        database: GraphDatabase,
        *,
        max_tau: int = 10,
        num_prior_pairs: int = 10_000,
        num_gmm_components: int = 3,
        seed: int = 0,
        backend: str = "auto",
        num_workers: Optional[int] = None,
        refit_pairs_per_graph: int = 64,
    ) -> None:
        if len(database) == 0:
            raise SearchError("cannot build an offline fitter over an empty database")
        self.database = database
        self.max_tau = int(max_tau)
        self.num_prior_pairs = int(num_prior_pairs)
        self.num_gmm_components = int(num_gmm_components)
        self.seed = seed
        self.backend = backend
        self.num_workers = num_workers
        self.refit_pairs_per_graph = int(refit_pairs_per_graph)

        self.gbd_prior: Optional[GBDPrior] = None
        self.ged_prior: Optional[GEDPrior] = None
        self.estimator: Optional[GBDAEstimator] = None
        self.version = 0
        self.fitted_revision = -1
        self.last_report = OfflineFitReport()
        self._samples: List[int] = []
        self._pending: List[StoredGraph] = []
        database.subscribe(self._on_graph_added)

    # ------------------------------------------------------------------ #
    # database hook
    # ------------------------------------------------------------------ #
    def _on_graph_added(self, entry: StoredGraph) -> None:
        self._pending.append(entry)

    def __setstate__(self, state):
        # The database sheds weakly-held subscribers on pickling; re-register.
        self.__dict__.update(state)
        self.database.subscribe(self._on_graph_added)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run at least once."""
        return self.estimator is not None

    @property
    def num_pending(self) -> int:
        """Graphs added since the last (re)fit and not yet sampled."""
        return len(self._pending)

    @property
    def is_stale(self) -> bool:
        """True when the database changed since the priors were last fitted."""
        return self.database.revision != self.fitted_revision

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SearchError("OfflineFitter.fit must be called before this operation")

    # ------------------------------------------------------------------ #
    # full offline stage
    # ------------------------------------------------------------------ #
    def fit(self) -> "OfflineFitter":
        """Run the full offline stage (Step 1 of Algorithm 1) and return self."""
        start = time.perf_counter()
        self.gbd_prior = GBDPrior(
            num_components=self.num_gmm_components,
            num_pairs=self.num_prior_pairs,
            seed=self.seed,
            backend=self.backend,
            num_workers=self.num_workers,
        ).fit(self.database.graphs())
        self._samples = list(self.gbd_prior.report.sampled_gbds)

        orders = sorted({entry.num_vertices for entry in self.database})
        self.ged_prior = GEDPrior(
            max_tau=self.max_tau,
            num_vertex_labels=self.database.num_vertex_labels,
            num_edge_labels=self.database.num_edge_labels,
        ).fit(orders, num_workers=self.num_workers)

        self.estimator = GBDAEstimator(
            self.gbd_prior,
            self.ged_prior,
            self.database.num_vertex_labels,
            self.database.num_edge_labels,
        )
        self.version += 1
        self.fitted_revision = self.database.revision
        self._pending.clear()
        self.last_report = OfflineFitReport(
            version=self.version,
            num_new_graphs=len(self.database),
            num_new_pairs=self.gbd_prior.report.num_pairs_sampled,
            num_total_samples=len(self._samples),
            new_orders=orders,
            seconds=time.perf_counter() - start,
        )
        _FITS_FULL.inc()
        _FIT_SECONDS.set(self.last_report.seconds)
        _MODEL_VERSION.set(self.version)
        return self

    # ------------------------------------------------------------------ #
    # incremental refit
    # ------------------------------------------------------------------ #
    def refit(self) -> bool:
        """Fold the pending additions into the priors; return whether anything changed.

        No-op (returns ``False``) when no graphs arrived since the last
        (re)fit.  Otherwise samples ``refit_pairs_per_graph`` partners per
        new graph, appends the newly reachable GBD samples, refits the GMM
        on the accumulated sample list (same seed stream as the original
        fit, so the result is deterministic), extends the GED grid with any
        new extended orders, rebuilds the estimator and bumps the version.
        """
        self._require_fitted()
        if not self._pending:
            return False
        start = time.perf_counter()
        new_entries, self._pending = self._pending, []
        graphs = self.database.graphs()

        # Deterministic per-version stream (integer-derived: string/tuple
        # hashes vary across processes), independent of the main seed's
        # earlier consumption.
        base_seed = self.seed if isinstance(self.seed, int) else 0
        rng = random.Random(base_seed * 1_000_003 + self.version)
        pairs = []
        population = len(graphs)
        for entry in new_entries:
            partners = min(self.refit_pairs_per_graph, population - 1)
            if partners <= 0:
                continue
            others = [i for i in range(population) if i != entry.graph_id]
            for j in rng.sample(others, partners):
                pairs.append((entry.graph_id, j))

        new_samples = compute_pair_gbds(graphs, pairs, num_workers=self.num_workers)
        self._samples.extend(new_samples)
        self.gbd_prior.fit_from_samples(
            self._samples, max_value=self.database.max_vertices
        )

        orders = {entry.num_vertices for entry in self.database}
        if (
            self.ged_prior.num_vertex_labels != self.database.num_vertex_labels
            or self.ged_prior.num_edge_labels != self.database.num_edge_labels
        ):
            # New label alphabets change the branch-type count D behind every
            # grid column; only a full rebuild stays faithful.
            self.ged_prior = GEDPrior(
                max_tau=self.max_tau,
                num_vertex_labels=self.database.num_vertex_labels,
                num_edge_labels=self.database.num_edge_labels,
            ).fit(sorted(orders), num_workers=self.num_workers)
            new_orders = sorted(orders)
        else:
            new_orders = self.ged_prior.update(orders, num_workers=self.num_workers)

        self.estimator = GBDAEstimator(
            self.gbd_prior,
            self.ged_prior,
            self.database.num_vertex_labels,
            self.database.num_edge_labels,
        )
        self.version += 1
        self.fitted_revision = self.database.revision
        self.last_report = OfflineFitReport(
            version=self.version,
            num_new_graphs=len(new_entries),
            num_new_pairs=len(pairs),
            num_total_samples=len(self._samples),
            new_orders=new_orders,
            seconds=time.perf_counter() - start,
        )
        _FITS_INCREMENTAL.inc()
        _FIT_SECONDS.set(self.last_report.seconds)
        _MODEL_VERSION.set(self.version)
        return True

    # ------------------------------------------------------------------ #
    # serving integration
    # ------------------------------------------------------------------ #
    def build_engine(self, **engine_kwargs):
        """Build a :class:`~repro.serving.engine.BatchQueryEngine` at the current version."""
        self._require_fitted()
        from repro.serving.engine import BatchQueryEngine

        engine = BatchQueryEngine(
            self.database, self.estimator, max_tau=self.max_tau, **engine_kwargs
        )
        engine.model_version = self.version
        return engine

    def snapshot(self, path, **engine_kwargs) -> Path:
        """Write a serving snapshot stamped with the current model version."""
        from repro.serving.snapshot import save_engine

        return save_engine(self.build_engine(**engine_kwargs), path)

    def __repr__(self) -> str:
        state = f"v{self.version}" if self.is_fitted else "unfitted"
        return (
            f"<OfflineFitter |D|={len(self.database)} {state} "
            f"pending={self.num_pending}>"
        )
