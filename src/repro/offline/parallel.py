"""Chunked / multiprocess execution of the offline stage's hot loops.

Table IV of the paper attributes the dominant offline cost to the ``N``
pair-GBD computations (Step 1.2) and, on datasets with many distinct graph
sizes, the per-order Jeffreys grid (Section V-C).  Both loops are
embarrassingly parallel, so this module provides:

* :func:`compute_pair_gbds` — evaluate the GBD of a list of index pairs,
  either serially with one shared branch cache or chunked across a process
  pool where each worker keeps a local cache.  Results are merged in chunk
  order, so the output is byte-identical to the serial order regardless of
  worker count.
* :func:`parallel_map` — an ordered, deterministic map over picklable items
  that degrades gracefully (serial fallback) when process pools are
  unavailable, e.g. in a sandboxed or single-core environment.

Workers are opt-in: ``num_workers=None`` (the default everywhere) keeps the
serial path, so small fits — the common case in tests — never pay process
start-up costs, and results never depend on the machine's core count.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.branches import branch_multiset
from repro.core.gbd import graph_branch_distance
from repro.graphs.graph import Graph

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["compute_pair_gbds", "parallel_map", "resolve_num_workers"]

#: Minimum number of items per worker chunk; below this the pickling and
#: process start-up overhead outweighs any parallel win.
_MIN_CHUNK = 64


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Normalise a worker-count request: ``None``/0/1 mean serial, ``-1`` auto."""
    if num_workers is None:
        return 1
    workers = int(num_workers)
    if workers == -1:
        return max(os.cpu_count() or 1, 1)
    return max(workers, 1)


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    num_workers: Optional[int] = None,
) -> List[R]:
    """Map ``func`` over ``items`` preserving order; optionally in processes.

    ``func`` and every item must be picklable when ``num_workers > 1``.
    Any failure to spin up the pool (sandboxes, missing fork support) falls
    back to the serial map rather than erroring: parallelism is a
    performance hint here, never a semantic one.
    """
    workers = resolve_num_workers(num_workers)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    try:
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
                return list(pool.map(func, items))
        except (OSError, PermissionError, BrokenProcessPool, pickle.PicklingError):
            # Workers spawn lazily, so a sandbox can break the pool only
            # after construction succeeded (BrokenProcessPool), and an
            # unpicklable func/item surfaces mid-map; both degrade serially.
            return [func(item) for item in items]
    except ImportError:
        return [func(item) for item in items]


def _gbd_chunk(payload: Tuple[List[Tuple[int, int]], Dict[int, Graph]]) -> List[int]:
    """Worker body: GBDs of one chunk of index pairs with a local branch cache."""
    pairs, graphs = payload
    cache: Dict[int, object] = {}
    gbds: List[int] = []
    for i, j in pairs:
        if i not in cache:
            cache[i] = branch_multiset(graphs[i])
        if j not in cache:
            cache[j] = branch_multiset(graphs[j])
        gbds.append(
            graph_branch_distance(graphs[i], graphs[j], branches1=cache[i], branches2=cache[j])
        )
    return gbds


def compute_pair_gbds(
    graphs: Sequence[Graph],
    pairs: Sequence[Tuple[int, int]],
    *,
    num_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[int]:
    """Compute ``GBD(graphs[i], graphs[j])`` for every ``(i, j)`` in ``pairs``.

    The serial path (default) shares one branch cache across all pairs —
    this is the loop previously inlined in :meth:`GBDPrior.fit`.  With
    ``num_workers > 1`` the pairs are split into contiguous chunks, each
    worker receives only the graphs its chunk references plus a private
    cache, and the per-chunk results are concatenated in chunk order — the
    output list is identical to the serial one for any worker count.
    """
    pairs = [(int(i), int(j)) for i, j in pairs]
    workers = resolve_num_workers(num_workers)
    if workers <= 1 or len(pairs) < 2 * _MIN_CHUNK:
        cache: Dict[int, object] = {}
        gbds: List[int] = []
        for i, j in pairs:
            if i not in cache:
                cache[i] = branch_multiset(graphs[i])
            if j not in cache:
                cache[j] = branch_multiset(graphs[j])
            gbds.append(
                graph_branch_distance(
                    graphs[i], graphs[j], branches1=cache[i], branches2=cache[j]
                )
            )
        return gbds

    if chunk_size is None:
        chunk_size = max((len(pairs) + workers - 1) // workers, _MIN_CHUNK)
    payloads = []
    for offset in range(0, len(pairs), chunk_size):
        chunk = pairs[offset : offset + chunk_size]
        needed = {index: graphs[index] for pair in chunk for index in pair}
        payloads.append((chunk, needed))

    results = parallel_map(_gbd_chunk, payloads, num_workers=workers)
    merged: List[int] = []
    for chunk_gbds in results:
        merged.extend(chunk_gbds)
    return merged
