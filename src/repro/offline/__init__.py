"""repro.offline — vectorized, parallel, incrementally refittable offline stage.

PR 1 made the *online* stage fast (the batched serving engine); this
subpackage does the same for the *offline* stage, the dominant cost in the
paper's Table IV analysis:

* :mod:`~repro.offline.em` — NumPy-vectorized EM inner loop behind
  ``GaussianMixtureModel.fit(backend="numpy")``; responsibilities, M-step
  and log-likelihood as array operations over all samples at once, same
  seeding/convergence semantics as the scalar path (parity within 1e-9);
* :mod:`~repro.offline.parallel` — chunked / multiprocess pair-GBD
  sampling and Jeffreys-grid construction with deterministic merges (any
  worker count produces identical priors);
* :class:`~repro.offline.fitter.OfflineFitter` — subscribes to the
  database's add-hook, accumulates newly reachable GBD samples, and refits
  the priors incrementally; each refit bumps the model version and can be
  persisted as a stamped serving snapshot.

Quickstart
----------
>>> from repro.offline import OfflineFitter
>>> fitter = OfflineFitter(database, max_tau=4).fit()       # doctest: +SKIP
>>> database.add(new_graph)                                 # doctest: +SKIP
>>> fitter.refit()                                          # doctest: +SKIP
>>> fitter.snapshot("engine.v2.snapshot")                   # doctest: +SKIP
"""

from repro.offline.fitter import OfflineFitReport, OfflineFitter
from repro.offline.parallel import compute_pair_gbds, parallel_map, resolve_num_workers

__all__ = [
    "OfflineFitter",
    "OfflineFitReport",
    "compute_pair_gbds",
    "parallel_map",
    "resolve_num_workers",
]
