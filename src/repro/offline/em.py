"""NumPy-vectorized EM inner loop for the univariate Gaussian mixture.

This module hosts the ``backend="numpy"`` path of
:meth:`repro.stats.gmm.GaussianMixtureModel.fit`.  It mirrors the scalar
Python loop step for step — the same k-means++ seeding happens *before*
either backend runs, the dead-component re-seed draws from the same
``random.Random`` stream, and the convergence test is the identical relative
log-likelihood criterion — so the two backends agree to floating-point
round-off (the parity tests pin them within 1e-9) while the array form runs
the E-step and M-step over all samples at once.

The paper's offline complexity (Table IV) is dominated by ``O(N · K · ℓ)``
density evaluations; here each EM iteration performs them as a single
``(N, K)`` array operation instead of ``N · K`` Python-level calls.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["run_em_numpy"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)

#: Responsibility floor shared with the scalar path: when every component
#: density underflows to zero the sample is assigned uniformly with this
#: stand-in total, keeping the log-likelihood finite.
_DENSITY_UNDERFLOW = 1e-300


def run_em_numpy(
    data: Sequence[float],
    means: Sequence[float],
    variances: Sequence[float],
    weights: Sequence[float],
    overall_variance: float,
    *,
    max_iterations: int,
    tolerance: float,
    variance_floor: float,
    rng: random.Random,
) -> Tuple[List[float], List[float], List[float], float, int]:
    """Run EM from the given initial parameters; return the fitted state.

    Returns ``(weights, means, variances, log_likelihood, n_iterations)``
    exactly as the scalar loop would leave them.  ``rng`` is consumed only
    when a component dies (same as the scalar path), so both backends stay
    on the same random stream.
    """
    x = np.asarray(data, dtype=np.float64)
    n = x.size
    k = len(means)
    means_arr = np.asarray(means, dtype=np.float64).copy()
    variances_arr = np.asarray(variances, dtype=np.float64).copy()
    weights_arr = np.asarray(weights, dtype=np.float64).copy()

    previous_log_likelihood = -math.inf
    n_iterations = 0
    for iteration in range(1, max_iterations + 1):
        # E-step: (n, k) responsibilities in one shot.
        stds = np.sqrt(variances_arr)
        z = (x[:, None] - means_arr[None, :]) / stds[None, :]
        densities = weights_arr[None, :] * np.exp(-0.5 * z * z) / (stds[None, :] * _SQRT_2PI)
        totals = densities.sum(axis=1)
        underflow = totals <= 0.0
        if underflow.any():
            densities[underflow, :] = _DENSITY_UNDERFLOW / k
            totals = np.where(underflow, _DENSITY_UNDERFLOW, totals)
        responsibilities = densities / totals[:, None]
        log_likelihood = float(np.log(totals).sum())

        # M-step: per-component reductions over all samples at once.
        for j in range(k):
            resp_j = responsibilities[:, j]
            total_resp = float(resp_j.sum())
            if total_resp <= 1e-12:
                # dead component: re-seed it on a random sample
                means_arr[j] = rng.choice(list(data))
                variances_arr[j] = overall_variance
                weights_arr[j] = 1.0 / n
                continue
            weights_arr[j] = total_resp / n
            means_arr[j] = float(resp_j @ x) / total_resp
            variances_arr[j] = max(
                float(resp_j @ np.square(x - means_arr[j])) / total_resp,
                variance_floor,
            )

        weights_arr = weights_arr / weights_arr.sum()

        n_iterations = iteration
        improvement = log_likelihood - previous_log_likelihood
        if abs(improvement) < tolerance * max(abs(log_likelihood), 1.0):
            previous_log_likelihood = log_likelihood
            break
        previous_log_likelihood = log_likelihood

    return (
        [float(w) for w in weights_arr],
        [float(m) for m in means_arr],
        [float(v) for v in variances_arr],
        previous_log_likelihood,
        n_iterations,
    )
