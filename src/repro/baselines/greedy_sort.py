"""Greedy-Sort-GED: approximate GED via sorted greedy assignment.

Riesen, Ferrer & Bunke (2015) observe that the exact Hungarian solution of
the LSAP cost matrix is often unnecessary: committing the globally cheapest
(row, column) pairs greedily produces assignments whose induced edit costs
are close to — and frequently better estimates of — the true GED, at
``O(n² log n²)`` instead of ``O(n³)``.

The estimate returned here is the *assignment cost* of the greedy solution
(the paper's competitor has no bound guarantee in either direction, and our
experiments reproduce exactly that behaviour: higher precision than LSAP,
recall below 1).
"""

from __future__ import annotations

from repro.assignment.greedy import sorted_greedy_assignment
from repro.assignment.hungarian import assignment_cost
from repro.baselines.base import PairwiseGEDEstimator
from repro.baselines.lsap import build_cost_matrix
from repro.graphs.graph import Graph

__all__ = ["GreedySortGED", "greedy_sort_estimate"]


def greedy_sort_estimate(g1: Graph, g2: Graph) -> float:
    """GED estimate: cost of the sorted-greedy assignment over the LSAP matrix."""
    matrix, _, _ = build_cost_matrix(g1, g2)
    if not matrix:
        return 0.0
    assignment = sorted_greedy_assignment(matrix)
    return assignment_cost(matrix, assignment)


class GreedySortGED(PairwiseGEDEstimator):
    """The Greedy-Sort-GED competitor of the paper."""

    method_name = "Greedy-Sort"

    def estimate(self, g1: Graph, g2: Graph) -> float:
        return greedy_sort_estimate(g1, g2)
