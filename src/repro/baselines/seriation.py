"""Graph Seriation GED estimation (spectral, Robles-Kelly & Hancock style).

The seriation competitor converts each graph into a one-dimensional vertex
sequence using the leading eigenvector of its adjacency matrix (the
"seriation" order), reads off the sequence of vertex labels along that
order, and estimates the GED of two graphs by the string edit distance of
their label sequences (weighted by the leading-eigenvalue gap, which carries
the structural information the label sequence alone misses).

This is a faithful, laptop-scale stand-in for the probabilistic seriation
model of [13]: it shares the defining pipeline (adjacency spectrum →
seriation order → sequence comparison), the ``O(n²)`` spectral extraction
and the ``O(n·m)`` sequence alignment, which is all the paper's evaluation
exercises (query time scaling and precision/recall of the thresholded
estimate).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.base import PairwiseGEDEstimator
from repro.graphs.graph import Graph

__all__ = ["SeriationGED", "seriation_sequence", "seriation_estimate"]


def _adjacency_matrix(graph: Graph) -> Tuple[np.ndarray, List]:
    """Dense 0/1 adjacency matrix and the vertex ordering used for its rows."""
    vertices = sorted(graph.vertices(), key=str)
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((len(vertices), len(vertices)), dtype=float)
    for u, v, _label in graph.edges():
        i, j = index[u], index[v]
        matrix[i, j] = 1.0
        matrix[j, i] = 1.0
    return matrix, vertices


def seriation_sequence(graph: Graph) -> Tuple[List, float]:
    """Return the seriation-ordered vertex label sequence and the leading eigenvalue.

    The seriation order sorts vertices by their component in the leading
    eigenvector of the adjacency matrix (ties broken by degree then label),
    which is the standard spectral seriation of the cited work.
    """
    if graph.num_vertices == 0:
        return [], 0.0
    matrix, vertices = _adjacency_matrix(graph)
    if graph.num_vertices == 1:
        return [graph.vertex_label(vertices[0])], 0.0
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    leading_index = int(np.argmax(eigenvalues))
    leading_value = float(eigenvalues[leading_index])
    leading_vector = eigenvectors[:, leading_index]
    # eigenvectors are defined up to sign; fix the sign so the order is stable
    if leading_vector.sum() < 0:
        leading_vector = -leading_vector
    order = sorted(
        range(len(vertices)),
        key=lambda i: (-leading_vector[i], -matrix[i].sum(), str(graph.vertex_label(vertices[i]))),
    )
    labels = [graph.vertex_label(vertices[i]) for i in order]
    return labels, leading_value


def _sequence_edit_distance(seq_a: List, seq_b: List) -> int:
    """Classic Levenshtein distance between two label sequences (O(n·m))."""
    if not seq_a:
        return len(seq_b)
    if not seq_b:
        return len(seq_a)
    previous = list(range(len(seq_b) + 1))
    for i, label_a in enumerate(seq_a, start=1):
        current = [i] + [0] * len(seq_b)
        for j, label_b in enumerate(seq_b, start=1):
            substitution = previous[j - 1] + (0 if label_a == label_b else 1)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    return previous[-1]


def seriation_estimate(g1: Graph, g2: Graph) -> float:
    """GED estimate from the seriation sequences of both graphs.

    The label-sequence edit distance accounts for vertex-level differences;
    the leading-eigenvalue gap (rounded) is added as a structural term so
    that graphs with identical label sequences but different connectivity do
    not collapse to distance zero.
    """
    sequence1, eigenvalue1 = seriation_sequence(g1)
    sequence2, eigenvalue2 = seriation_sequence(g2)
    label_term = _sequence_edit_distance(sequence1, sequence2)
    structure_term = abs(eigenvalue1 - eigenvalue2)
    edge_term = abs(g1.num_edges - g2.num_edges)
    return float(label_term) + max(structure_term, float(edge_term))


class SeriationGED(PairwiseGEDEstimator):
    """The Graph Seriation competitor of the paper."""

    method_name = "Seriation"

    def estimate(self, g1: Graph, g2: Graph) -> float:
        return seriation_estimate(g1, g2)
