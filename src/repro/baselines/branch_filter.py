"""Branch-count lower-bound filter (Zheng et al., CIKM 2013).

The structural filter the paper builds on: because one edit operation
changes at most two branches (it touches one vertex, or one edge and hence
its two endpoints' branches), the branch multiset difference lower-bounds
twice the GED.  The resulting bound ``GBD / 2 <= GED`` can be used directly
as a conservative similarity filter — it never misses a true answer (recall
1.0) but its precision is limited, which is one of the motivations for the
probabilistic treatment GBDA adds on top.
"""

from __future__ import annotations

from repro.baselines.base import PairwiseGEDEstimator
from repro.core.gbd import ged_lower_bound, graph_branch_distance
from repro.graphs.graph import Graph

__all__ = ["branch_lower_bound", "BranchFilterGED"]


def branch_lower_bound(g1: Graph, g2: Graph) -> int:
    """Lower bound of GED from the branch distance: ``ceil(GBD / 2)``.

    Delegates to the shared bound kernel
    :func:`repro.core.gbd.ged_lower_bound` — the same math the pruned
    execution layer applies in whole-array form — so the bound has a single
    source of truth.
    """
    return ged_lower_bound(graph_branch_distance(g1, g2))


class BranchFilterGED(PairwiseGEDEstimator):
    """Branch lower-bound filter wrapped as a pairwise estimator."""

    method_name = "Branch-LB"

    def estimate(self, g1: Graph, g2: Graph) -> float:
        return branch_lower_bound(g1, g2)
