"""Baseline GED computations and the competitor search methods.

* :mod:`repro.baselines.ged_exact` — exact GED via A* search (small graphs).
* :mod:`repro.baselines.lsap` — bipartite/LSAP GED estimation (Riesen & Bunke);
  the exact assignment cost is a lower bound on GED.
* :mod:`repro.baselines.greedy_sort` — Greedy-Sort-GED (quadratic-time greedy
  assignment, no bound guarantee).
* :mod:`repro.baselines.seriation` — spectral graph seriation GED estimation.
* :mod:`repro.baselines.branch_filter` — branch-count lower-bound filter
  (Zheng et al.), used as an extra structural baseline and by the ablations.
* :mod:`repro.baselines.base` — the shared threshold-search wrapper that
  turns any pairwise estimator into a similarity-search method.
"""

from repro.baselines.base import EstimatorSearch, PairwiseGEDEstimator
from repro.baselines.ged_exact import AStarGED, exact_ged
from repro.baselines.lsap import LSAPGED, lsap_lower_bound, lsap_upper_bound
from repro.baselines.greedy_sort import GreedySortGED
from repro.baselines.seriation import SeriationGED
from repro.baselines.branch_filter import BranchFilterGED, branch_lower_bound

__all__ = [
    "PairwiseGEDEstimator",
    "EstimatorSearch",
    "AStarGED",
    "exact_ged",
    "LSAPGED",
    "lsap_lower_bound",
    "lsap_upper_bound",
    "GreedySortGED",
    "SeriationGED",
    "BranchFilterGED",
    "branch_lower_bound",
]
