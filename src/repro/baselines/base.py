"""Shared scaffolding for the competitor search methods.

Every baseline (LSAP, Greedy-Sort-GED, Graph Seriation, exact A*) is a
*pairwise estimator*: given two graphs it produces an estimated GED.  Turning
such an estimator into a similarity-search method is uniform — accept every
database graph whose estimated distance is at most the threshold ``τ̂`` —
so the logic lives here once and each baseline only supplies its
``estimate`` method.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.db.database import GraphDatabase
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import SearchError
from repro.graphs.graph import Graph

__all__ = ["PairwiseGEDEstimator", "EstimatorSearch"]


class PairwiseGEDEstimator:
    """Interface of a pairwise graph-edit-distance estimator."""

    #: Human-readable method name used in reports and plots.
    method_name = "estimator"

    def estimate(self, g1: Graph, g2: Graph) -> float:
        """Return an estimate of ``GED(g1, g2)``."""
        raise NotImplementedError

    def __call__(self, g1: Graph, g2: Graph) -> float:
        return self.estimate(g1, g2)


class EstimatorSearch:
    """Similarity search driven by a pairwise GED estimator.

    Accepts every database graph ``G`` with ``estimate(Q, G) <= τ̂``.  When
    the underlying estimator is a lower bound of GED (exact LSAP), the answer
    is a superset of the true answer set (recall = 1); when it is an upper
    bound, the answer is a subset (precision = 1).
    """

    def __init__(self, database: GraphDatabase, estimator: PairwiseGEDEstimator) -> None:
        if len(database) == 0:
            raise SearchError("cannot build a search over an empty database")
        self.database = database
        self.estimator = estimator

    @property
    def method_name(self) -> str:
        """Name of the wrapped estimator."""
        return self.estimator.method_name

    def query(self, query: SimilarityQuery) -> QueryAnswer:
        """Answer one similarity query by thresholding the pairwise estimates."""
        start = time.perf_counter()
        scores: Dict[int, float] = {}
        accepted: List[int] = []
        for entry in self.database:
            estimate = self.estimator.estimate(query.query_graph, entry.graph)
            scores[entry.graph_id] = estimate
            if estimate <= query.tau_hat:
                accepted.append(entry.graph_id)
        elapsed = time.perf_counter() - start
        return QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(accepted),
            scores=scores,
            elapsed_seconds=elapsed,
        )

    def search(self, query_graph: Graph, tau_hat: int) -> QueryAnswer:
        """Convenience wrapper mirroring :meth:`GBDASearch.search`."""
        return self.query(SimilarityQuery(query_graph, tau_hat))

    def __repr__(self) -> str:
        return f"<EstimatorSearch method={self.method_name} |D|={len(self.database)}>"
