"""Exact Graph Edit Distance via A* search over vertex mappings.

The classical exact approach (Hart et al.'s A* applied to GED, see [5] in
the paper) explores partial vertex mappings between the two graphs; each
state maps a prefix of ``G1``'s vertices to vertices of ``G2`` (or to a
deletion), and the admissible heuristic lower-bounds the cost of completing
the mapping by comparing the label multisets of the unmapped remainder.

Exact GED is NP-hard and the paper notes that A* cannot handle graphs beyond
roughly a dozen vertices; this implementation honours that reality with an
explicit ``max_vertices`` guard and an optional expansion budget so that
callers (the evaluation harness) can fall back to known-GED synthetic data
for anything larger — exactly the strategy the paper itself adopts.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import List, Optional, Tuple

from repro.baselines.base import PairwiseGEDEstimator
from repro.exceptions import SearchError
from repro.graphs.graph import Graph

__all__ = ["exact_ged", "AStarGED"]

#: Marker used in the mapping for "this vertex of G1 is deleted".
_DELETED = None


def _label_multiset_lower_bound(g1: Graph, g2: Graph, unmapped1, unmapped2) -> float:
    """Admissible heuristic: label-multiset mismatch of the unmapped parts.

    The cheapest completion must at least relabel/insert/delete vertices so
    that the vertex-label multisets match; ``max(|A|, |B|) - |A ∩ B|`` over
    the remaining vertex labels therefore never over-estimates the remaining
    cost (edge costs are ignored, keeping the bound admissible).
    """
    labels1 = Counter(g1.vertex_label(v) for v in unmapped1)
    labels2 = Counter(g2.vertex_label(v) for v in unmapped2)
    intersection = sum((labels1 & labels2).values())
    return max(sum(labels1.values()), sum(labels2.values())) - intersection


def _edge_cost_for_mapping(
    g1: Graph, g2: Graph, mapped_pairs: List[Tuple[object, Optional[object]]]
) -> int:
    """Edge edit cost induced by a (complete) vertex mapping.

    For every pair of mapped G1 vertices, compares the edge (or absence
    thereof) with the edge between their images; unmatched edges cost one
    deletion/insertion, mismatched labels cost one relabel.  Edges of G2
    between inserted vertices are handled by the caller.
    """
    cost = 0
    for (u1, u2), (v1, v2) in itertools.combinations(mapped_pairs, 2):
        edge1 = g1.edge_label(u1, v1) if g1.has_edge(u1, v1) else None
        if u2 is _DELETED or v2 is _DELETED:
            edge2 = None
        else:
            edge2 = g2.edge_label(u2, v2) if g2.has_edge(u2, v2) else None
        if edge1 is None and edge2 is None:
            continue
        if edge1 is None or edge2 is None:
            cost += 1
        elif edge1 != edge2:
            cost += 1
    return cost


def exact_ged(
    g1: Graph,
    g2: Graph,
    *,
    max_vertices: int = 12,
    max_expansions: int = 2_000_000,
    upper_bound: Optional[float] = None,
) -> int:
    """Compute the exact GED between two small graphs with A* search.

    Parameters
    ----------
    max_vertices:
        Guard against accidentally launching an exponential search on large
        graphs; raise the limit explicitly if you really mean it.
    max_expansions:
        Budget on the number of expanded search states.
    upper_bound:
        Optional known upper bound used to prune the search frontier.

    Raises
    ------
    SearchError
        If either graph exceeds ``max_vertices`` or the expansion budget is
        exhausted before the optimum is proven.
    """
    if g1.num_vertices > max_vertices or g2.num_vertices > max_vertices:
        raise SearchError(
            f"exact GED is limited to graphs with at most {max_vertices} vertices "
            f"(got {g1.num_vertices} and {g2.num_vertices}); use an estimator instead"
        )

    vertices1 = sorted(g1.vertices(), key=str)
    vertices2 = sorted(g2.vertices(), key=str)
    n1, n2 = len(vertices1), len(vertices2)

    if n1 == 0 and n2 == 0:
        return 0

    # state: (f, g_cost, index, mapping tuple, used frozenset)
    counter = itertools.count()
    start_h = _label_multiset_lower_bound(g1, g2, vertices1, vertices2)
    heap = [(start_h, 0.0, next(counter), 0, (), frozenset())]
    best = float("inf") if upper_bound is None else float(upper_bound)
    expansions = 0

    while heap:
        f_cost, g_cost, _, index, mapping, used = heapq.heappop(heap)
        if f_cost >= best:
            break
        expansions += 1
        if expansions > max_expansions:
            raise SearchError("exact GED search exceeded its expansion budget")

        if index == n1:
            # All G1 vertices decided; remaining G2 vertices are insertions.
            remaining2 = [v for v in vertices2 if v not in used]
            total = g_cost + len(remaining2)
            # edges incident to inserted vertices must be inserted as well
            inserted = set(remaining2)
            for u, v, _label in g2.edges():
                if u in inserted or v in inserted:
                    total += 1
            best = min(best, total)
            continue

        u1 = vertices1[index]
        mapped_pairs = list(zip(vertices1[:index], mapping))

        # Option 1: map u1 to each unused vertex of G2.
        for v2 in vertices2:
            if v2 in used:
                continue
            cost = g_cost
            if g1.vertex_label(u1) != g2.vertex_label(v2):
                cost += 1
            for (prev1, prev2) in mapped_pairs:
                edge1 = g1.edge_label(u1, prev1) if g1.has_edge(u1, prev1) else None
                if prev2 is _DELETED:
                    edge2 = None
                else:
                    edge2 = g2.edge_label(v2, prev2) if g2.has_edge(v2, prev2) else None
                if edge1 is None and edge2 is None:
                    continue
                if edge1 is None or edge2 is None:
                    cost += 1
                elif edge1 != edge2:
                    cost += 1
            new_used = used | {v2}
            heuristic = _label_multiset_lower_bound(
                g1, g2, vertices1[index + 1:], [v for v in vertices2 if v not in new_used]
            )
            if cost + heuristic < best:
                heapq.heappush(
                    heap,
                    (cost + heuristic, cost, next(counter), index + 1, mapping + (v2,), new_used),
                )

        # Option 2: delete u1 (and all its edges to previously mapped vertices).
        cost = g_cost + 1
        for (prev1, _prev2) in mapped_pairs:
            if g1.has_edge(u1, prev1):
                cost += 1
        heuristic = _label_multiset_lower_bound(
            g1, g2, vertices1[index + 1:], [v for v in vertices2 if v not in used]
        )
        if cost + heuristic < best:
            heapq.heappush(
                heap,
                (cost + heuristic, cost, next(counter), index + 1, mapping + (_DELETED,), used),
            )

    if best == float("inf"):
        raise SearchError("exact GED search failed to find any complete mapping")
    return int(best)


class AStarGED(PairwiseGEDEstimator):
    """Exact A* GED wrapped as a pairwise estimator (small graphs only)."""

    method_name = "A*-exact"

    def __init__(self, *, max_vertices: int = 12, max_expansions: int = 2_000_000) -> None:
        self.max_vertices = max_vertices
        self.max_expansions = max_expansions

    def estimate(self, g1: Graph, g2: Graph) -> float:
        return float(
            exact_ged(
                g1,
                g2,
                max_vertices=self.max_vertices,
                max_expansions=self.max_expansions,
            )
        )
