"""LSAP-based GED estimation (bipartite graph matching, Riesen & Bunke).

The method builds a square cost matrix of size ``(n + m) × (n + m)`` whose
blocks encode vertex substitutions, deletions, and insertions.  Each entry
charges the vertex-label difference plus *half* of the incident-edge
multiset difference; with those local costs, the optimal assignment cost is
a **lower bound** of the exact GED (each edge edit is shared by two
endpoints, so halving avoids double counting) — this is why the LSAP
competitor always achieves 100 % recall in the paper's experiments.

The induced vertex mapping can also be turned into a concrete edit path
whose length is an **upper bound** of GED; both bounds are exposed.

Complexity: building the matrix is ``O((n + m)² · d)``; solving it exactly
with the Hungarian algorithm is ``O((n + m)³)``, the cost the paper quotes
for this baseline.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.assignment.hungarian import assignment_cost, hungarian
from repro.baselines.base import PairwiseGEDEstimator
from repro.graphs.graph import Graph

__all__ = ["build_cost_matrix", "lsap_lower_bound", "lsap_upper_bound", "LSAPGED"]


def _edge_multiset_difference(labels_a: Counter, labels_b: Counter) -> int:
    """``max(|A|, |B|) - |A ∩ B|`` over two edge-label multisets."""
    intersection = sum((labels_a & labels_b).values())
    return max(sum(labels_a.values()), sum(labels_b.values())) - intersection


def build_cost_matrix(g1: Graph, g2: Graph) -> Tuple[List[List[float]], List, List]:
    """Build the Riesen–Bunke ``(n+m) × (n+m)`` cost matrix.

    Returns the matrix together with the vertex orderings of both graphs so
    callers can interpret the assignment.
    """
    vertices1 = list(g1.vertices())
    vertices2 = list(g2.vertices())
    n, m = len(vertices1), len(vertices2)
    size = n + m

    incident1 = {v: Counter(g1.incident_edge_labels(v)) for v in vertices1}
    incident2 = {v: Counter(g2.incident_edge_labels(v)) for v in vertices2}

    matrix = [[0.0] * size for _ in range(size)]
    # A large finite penalty stands in for "forbidden" cells: the Hungarian
    # potentials misbehave with true infinities (inf - inf), and any value
    # larger than the worst feasible assignment works identically.
    forbidden = 4.0 * (size + g1.num_edges + g2.num_edges + 1)

    for i, u in enumerate(vertices1):
        for j, v in enumerate(vertices2):
            label_cost = 0.0 if g1.vertex_label(u) == g2.vertex_label(v) else 1.0
            edge_cost = 0.5 * _edge_multiset_difference(incident1[u], incident2[v])
            matrix[i][j] = label_cost + edge_cost

    for i, u in enumerate(vertices1):
        for j in range(m, size):
            if j - m == i:
                # deleting u: one vertex deletion plus half of its incident edges
                matrix[i][j] = 1.0 + 0.5 * g1.degree(u)
            else:
                matrix[i][j] = forbidden

    for i in range(n, size):
        for j, v in enumerate(vertices2):
            if i - n == j:
                matrix[i][j] = 1.0 + 0.5 * g2.degree(v)
            else:
                matrix[i][j] = forbidden

    # bottom-right block: ε → ε substitutions cost nothing
    for i in range(n, size):
        for j in range(m, size):
            matrix[i][j] = 0.0

    return matrix, vertices1, vertices2


def lsap_lower_bound(g1: Graph, g2: Graph) -> float:
    """Lower bound of GED: the exact optimal assignment cost of the cost matrix."""
    matrix, _, _ = build_cost_matrix(g1, g2)
    if not matrix:
        return 0.0
    assignment = hungarian(matrix)
    return assignment_cost(matrix, assignment)


def _induced_edit_cost(
    g1: Graph, g2: Graph, vertices1: List, vertices2: List, assignment: List[int]
) -> float:
    """Length of the edit path induced by a vertex assignment (GED upper bound)."""
    n, m = len(vertices1), len(vertices2)
    mapping = {}
    deleted = []
    for row, column in enumerate(assignment):
        if row < n:
            if column < m:
                mapping[vertices1[row]] = vertices2[column]
            else:
                deleted.append(vertices1[row])
    inserted = [v for j, v in enumerate(vertices2) if j not in set(assignment[:n])]

    cost = float(len(deleted) + len(inserted))
    for u, v in mapping.items():
        if g1.vertex_label(u) != g2.vertex_label(v):
            cost += 1.0

    # edge costs: edges of G1 between mapped/deleted vertices vs their images
    seen_g2_edges = set()
    for u, v, label in g1.edges():
        image_u = mapping.get(u)
        image_v = mapping.get(v)
        if image_u is None or image_v is None:
            cost += 1.0  # edge deleted together with a deleted endpoint
            continue
        if g2.has_edge(image_u, image_v):
            seen_g2_edges.add(frozenset((image_u, image_v)))
            if g2.edge_label(image_u, image_v) != label:
                cost += 1.0
        else:
            cost += 1.0
    for u, v, _label in g2.edges():
        if frozenset((u, v)) not in seen_g2_edges:
            mapped_targets = set(mapping.values())
            if u in mapped_targets and v in mapped_targets:
                cost += 1.0  # edge must be inserted between two mapped vertices
            elif u not in mapped_targets or v not in mapped_targets:
                cost += 1.0  # edge incident to an inserted vertex
    return cost


def lsap_upper_bound(g1: Graph, g2: Graph) -> float:
    """Upper bound of GED: the edit cost induced by the optimal assignment."""
    matrix, vertices1, vertices2 = build_cost_matrix(g1, g2)
    if not matrix:
        return 0.0
    assignment = hungarian(matrix)
    return _induced_edit_cost(g1, g2, vertices1, vertices2, assignment)


class LSAPGED(PairwiseGEDEstimator):
    """The LSAP competitor of the paper (exact Hungarian solution, lower bound).

    Parameters
    ----------
    bound:
        ``"lower"`` (default, the paper's configuration) or ``"upper"`` to
        return the induced-edit-path estimate instead.
    """

    method_name = "LSAP"

    def __init__(self, bound: str = "lower") -> None:
        if bound not in ("lower", "upper"):
            raise ValueError("bound must be 'lower' or 'upper'")
        self.bound = bound

    def estimate(self, g1: Graph, g2: Graph) -> float:
        if self.bound == "lower":
            return lsap_lower_bound(g1, g2)
        return lsap_upper_bound(g1, g2)
