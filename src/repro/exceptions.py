"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so
downstream users can catch library failures with a single ``except`` clause
while still being able to distinguish individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or mutation."""


class DuplicateVertexError(GraphError):
    """Raised when adding a vertex whose identifier already exists."""


class MissingVertexError(GraphError, KeyError):
    """Raised when referencing a vertex identifier that does not exist."""


class DuplicateEdgeError(GraphError):
    """Raised when adding an edge that already exists (simple graphs only)."""


class MissingEdgeError(GraphError, KeyError):
    """Raised when referencing an edge that does not exist."""


class SelfLoopError(GraphError):
    """Raised when adding a self-loop, which simple graphs forbid."""


class InvalidLabelError(GraphError, ValueError):
    """Raised when a label is invalid (e.g. the reserved virtual label)."""


class EditOperationError(ReproError):
    """Raised when a graph edit operation cannot be applied."""


class ModelError(ReproError):
    """Base class for probabilistic-model failures."""


class PriorNotFittedError(ModelError):
    """Raised when a prior is queried before being fitted/pre-computed."""


class EstimationError(ModelError):
    """Raised when the posterior estimation cannot be computed."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, parsed, or validated."""


class SearchError(ReproError):
    """Raised when a similarity-search query is malformed or fails."""


class QueryError(SearchError, ValueError):
    """Raised when a :class:`~repro.db.query.SimilarityQuery` is constructed
    with invalid parameters (negative ``τ̂``, ``γ`` outside ``[0, 1]``).

    Subclasses :class:`SearchError` so existing callers that catch the
    broader class keep working.
    """


class ServingError(ReproError):
    """Raised when the batched query-serving subsystem is misused."""


class SnapshotError(ServingError):
    """Raised when a serving-engine snapshot cannot be written or read."""


class ServiceError(ServingError):
    """Base class for failures of the network service layer (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """Raised when a wire frame or message violates the service protocol."""


class ServiceOverloadedError(ServiceError):
    """Raised client-side when the server sheds a query with ``OVERLOADED``.

    The request was never queued: the admission controller rejected it
    because the server-wide pending budget (or the connection's in-flight
    budget) was exhausted.  Safe to retry after backing off.
    """


class AssignmentError(ReproError):
    """Raised when an assignment-problem instance is malformed."""


class ConvergenceError(ModelError):
    """Raised when an iterative fitting procedure fails to converge."""
