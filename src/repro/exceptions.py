"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so
downstream users can catch library failures with a single ``except`` clause
while still being able to distinguish individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or mutation."""


class DuplicateVertexError(GraphError):
    """Raised when adding a vertex whose identifier already exists."""


class MissingVertexError(GraphError, KeyError):
    """Raised when referencing a vertex identifier that does not exist."""


class DuplicateEdgeError(GraphError):
    """Raised when adding an edge that already exists (simple graphs only)."""


class MissingEdgeError(GraphError, KeyError):
    """Raised when referencing an edge that does not exist."""


class SelfLoopError(GraphError):
    """Raised when adding a self-loop, which simple graphs forbid."""


class InvalidLabelError(GraphError, ValueError):
    """Raised when a label is invalid (e.g. the reserved virtual label)."""


class EditOperationError(ReproError):
    """Raised when a graph edit operation cannot be applied."""


class ModelError(ReproError):
    """Base class for probabilistic-model failures."""


class PriorNotFittedError(ModelError):
    """Raised when a prior is queried before being fitted/pre-computed."""


class EstimationError(ModelError):
    """Raised when the posterior estimation cannot be computed."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, parsed, or validated."""


class SearchError(ReproError):
    """Raised when a similarity-search query is malformed or fails."""


class QueryError(SearchError, ValueError):
    """Raised when a :class:`~repro.db.query.SimilarityQuery` is constructed
    with invalid parameters (negative ``τ̂``, ``γ`` outside ``[0, 1]``).

    Subclasses :class:`SearchError` so existing callers that catch the
    broader class keep working.
    """


class ServingError(ReproError):
    """Raised when the batched query-serving subsystem is misused."""


class SnapshotError(ServingError):
    """Raised when a serving-engine snapshot cannot be written or read."""


class SnapshotCorruptError(SnapshotError):
    """Raised when a snapshot file fails its integrity check on load.

    Covers truncation (the checksum footer is missing bytes), bit flips
    (the sha256 of the payload does not match the recorded digest), and a
    payload that unpickles but was written torn.  A corrupt snapshot is
    *data loss evidence*, not a programming error — callers that hold a
    previously-good engine (the service's hot swap) must keep serving it.
    """


class ServiceError(ServingError):
    """Base class for failures of the network service layer (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """Raised when a wire frame or message violates the service protocol."""


class ServiceOverloadedError(ServiceError):
    """Raised client-side when the server sheds a query with ``OVERLOADED``.

    The request was never queued: the admission controller rejected it
    because the server-wide pending budget (or the connection's in-flight
    budget) was exhausted.  Safe to retry after backing off.
    """


class DeadlineExceededError(ServiceError):
    """Raised when a query's deadline expired before an answer was produced.

    Server-side the query is *dropped*, never scored: admission refuses
    already-expired work and the micro-batcher sheds expired entries at
    flush time, so a deadline that has passed costs no engine cycles.
    Client-side it also covers a local read timeout on a deadline-carrying
    request.  Queries are idempotent reads — safe to retry with a fresh
    deadline.
    """


class ConnectionLostError(ServiceError, ConnectionError):
    """Raised client-side when the service connection died mid-conversation.

    Covers abrupt resets, EOF with responses outstanding, and unframeable
    bytes on the wire (a corrupt or truncated frame poisons the pipelined
    stream — nothing after it can be trusted).  Subclasses
    :class:`ConnectionError` so retry policies treat it as transient:
    queries are idempotent reads and the client reconnects before
    resending.
    """


class CircuitOpenError(ServiceError):
    """Raised client-side when the endpoint's circuit breaker is open.

    The request was not sent: recent failures tripped the breaker, and
    until the reset timeout elapses (half-open probe) every attempt fails
    fast locally instead of piling onto a struggling server.
    """


class AssignmentError(ReproError):
    """Raised when an assignment-problem instance is malformed."""


class ConvergenceError(ModelError):
    """Raised when an iterative fitting procedure fails to converge."""
