"""Normal distribution helpers and the continuity correction of Section V-B.

The GBD prior ``Λ2 = Pr[GBD = ϕ]`` is obtained by fitting a Gaussian Mixture
Model to sampled (continuous-valued after smoothing) GBDs and then
integrating the mixture density over the unit interval ``[ϕ - 0.5, ϕ + 0.5]``
(Equation 14) — the textbook continuity correction for approximating a
discrete distribution by a continuous one.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["normal_pdf", "normal_cdf", "normal_interval_probability", "continuity_corrected_pmf"]

_SQRT_2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def normal_pdf(x: float, mean: float, std: float) -> float:
    """Probability density of the normal distribution ``N(mean, std^2)`` at ``x``."""
    if std <= 0:
        raise ValueError("standard deviation must be positive")
    z = (x - mean) / std
    return math.exp(-0.5 * z * z) / (std * _SQRT_2PI)


def normal_cdf(x: float, mean: float, std: float) -> float:
    """Cumulative distribution of ``N(mean, std^2)`` at ``x`` via the error function."""
    if std <= 0:
        raise ValueError("standard deviation must be positive")
    return 0.5 * (1.0 + math.erf((x - mean) / (std * _SQRT_2)))


def normal_interval_probability(low: float, high: float, mean: float, std: float) -> float:
    """Probability that a ``N(mean, std^2)`` variable falls inside ``[low, high]``."""
    if high < low:
        low, high = high, low
    return max(normal_cdf(high, mean, std) - normal_cdf(low, mean, std), 0.0)


def continuity_corrected_pmf(
    value: int,
    weights: Sequence[float],
    means: Sequence[float],
    stds: Sequence[float],
) -> float:
    """Equation (14): ``Pr[X = value] = ∫_{value-0.5}^{value+0.5} Σ_i π_i N(x; μ_i, σ_i) dx``.

    ``weights``, ``means`` and ``stds`` describe the mixture components.
    """
    if not (len(weights) == len(means) == len(stds)):
        raise ValueError("mixture parameter sequences must have equal length")
    low, high = value - 0.5, value + 0.5
    probability = 0.0
    for weight, mean, std in zip(weights, means, stds):
        probability += weight * normal_interval_probability(low, high, mean, std)
    return probability
