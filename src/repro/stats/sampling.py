"""Sampling utilities for the offline prior-estimation stage.

Section V-B samples ``α%`` of graph pairs from the database (``N = 100 000``
pairs in the experiments) and computes the GBD of each pair to fit the prior.
These helpers draw reproducible pair samples without materialising the full
quadratic pair set.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, TypeVar, Union

T = TypeVar("T")
RandomState = Union[int, random.Random, None]

__all__ = [
    "sample_pairs",
    "sample_items",
    "encode_rng_state",
    "decode_rng_state",
]


def _as_rng(seed: RandomState) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def encode_rng_state(rng: random.Random) -> list:
    """Encode ``rng.getstate()`` as nested plain lists (pickle/JSON friendly).

    The offline priors round-trip their random streams through snapshot
    state dicts with this encoding so that refitting a reloaded prior
    consumes exactly the same stream as refitting the original instance.
    """
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def decode_rng_state(state: Sequence) -> random.Random:
    """Rebuild a ``random.Random`` from :func:`encode_rng_state` output."""
    rng = random.Random()
    version, internal, gauss_next = state
    rng.setstate((int(version), tuple(int(v) for v in internal), gauss_next))
    return rng


def sample_items(items: Sequence[T], count: int, *, seed: RandomState = None) -> List[T]:
    """Sample ``count`` items without replacement (all items when count >= len)."""
    if count >= len(items):
        return list(items)
    rng = _as_rng(seed)
    return rng.sample(list(items), count)


def sample_pairs(
    items: Sequence[T],
    num_pairs: int,
    *,
    seed: RandomState = None,
    distinct: bool = True,
) -> List[Tuple[T, T]]:
    """Sample ``num_pairs`` unordered pairs of items uniformly at random.

    Parameters
    ----------
    items:
        The population (e.g. the graphs of the database).
    num_pairs:
        Number of pairs to draw.  When the population admits fewer distinct
        pairs than requested and ``distinct`` is true, all distinct pairs are
        returned instead.
    distinct:
        When true, the two elements of each pair are different items and no
        pair is repeated; when false, pairs are drawn independently with
        replacement (faster for very large populations).
    """
    population = list(items)
    n = len(population)
    if n < 2:
        return []
    rng = _as_rng(seed)

    if not distinct:
        pairs = []
        for _ in range(num_pairs):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            pairs.append((population[i], population[j]))
        return pairs

    total_pairs = n * (n - 1) // 2
    if num_pairs >= total_pairs:
        return [
            (population[i], population[j])
            for i in range(n)
            for j in range(i + 1, n)
        ]

    chosen_indices = rng.sample(range(total_pairs), num_pairs)
    pairs = []
    for flat_index in chosen_indices:
        i, j = _unrank_pair(flat_index, n)
        pairs.append((population[i], population[j]))
    return pairs


def _unrank_pair(flat_index: int, n: int) -> Tuple[int, int]:
    """Map a flat index in ``[0, C(n, 2))`` to the lexicographic pair ``(i, j)``.

    Pairs are ordered ``(0,1), (0,2), ..., (0,n-1), (1,2), ...``; the inverse
    mapping is computed with a closed-form row search so sampling stays
    ``O(num_pairs)`` regardless of the population size.
    """
    remaining = flat_index
    for i in range(n - 1):
        row_length = n - 1 - i
        if remaining < row_length:
            return i, i + 1 + remaining
        remaining -= row_length
    raise ValueError(f"flat index {flat_index} out of range for population of size {n}")
