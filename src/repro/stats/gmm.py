"""Gaussian Mixture Model fitted with Expectation-Maximisation.

Section V-B of the paper estimates the prior distribution of GBDs by fitting
a user-chosen number ``K`` of Gaussian components to the GBDs of sampled
graph pairs (Equation 13) and reading discrete probabilities through the
continuity correction (Equation 14).

The implementation is a from-scratch univariate EM fit (no sklearn), with

* k-means++-style seeding of the component means,
* a variance floor to keep components from collapsing onto repeated
  integer-valued samples (GBDs are integers), and
* a deterministic ``seed`` so offline pre-processing is reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.exceptions import ConvergenceError
from repro.stats.distributions import continuity_corrected_pmf, normal_pdf

RandomState = Union[int, random.Random, None]

__all__ = ["GaussianMixtureModel", "MixtureComponent"]


@dataclass(frozen=True)
class MixtureComponent:
    """A single Gaussian component ``π · N(μ, σ²)``."""

    weight: float
    mean: float
    std: float


class GaussianMixtureModel:
    """Univariate Gaussian mixture fitted with EM.

    Parameters
    ----------
    num_components:
        Number of mixture components ``K`` (user chosen, as in the paper).
    max_iterations:
        Maximum EM iterations (``ℓ`` in the paper's complexity analysis).
    tolerance:
        Relative log-likelihood improvement below which EM stops early.
    variance_floor:
        Lower bound on component variances; prevents degenerate spikes when
        many samples share the same integer value.
    seed:
        Seed (or ``random.Random``) controlling the k-means++ initialisation.
    """

    def __init__(
        self,
        num_components: int = 3,
        *,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        variance_floor: float = 1e-3,
        seed: RandomState = 0,
    ) -> None:
        if num_components < 1:
            raise ValueError("num_components must be at least 1")
        self.num_components = num_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.variance_floor = variance_floor
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        self.components: List[MixtureComponent] = []
        self.log_likelihood_: Optional[float] = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, samples: Sequence[float]) -> "GaussianMixtureModel":
        """Fit the mixture to 1-D ``samples`` and return ``self``."""
        data = [float(x) for x in samples]
        if not data:
            raise ConvergenceError("cannot fit a mixture to an empty sample")
        k = min(self.num_components, len(set(data))) or 1

        means = self._initial_means(data, k)
        overall_variance = max(_variance(data), self.variance_floor)
        variances = [overall_variance] * k
        weights = [1.0 / k] * k

        previous_log_likelihood = -math.inf
        for iteration in range(1, self.max_iterations + 1):
            # E-step: responsibilities
            responsibilities = []
            log_likelihood = 0.0
            for x in data:
                densities = [
                    weights[j] * normal_pdf(x, means[j], math.sqrt(variances[j]))
                    for j in range(k)
                ]
                total = sum(densities)
                if total <= 0.0:
                    total = 1e-300
                    densities = [1e-300 / k] * k
                responsibilities.append([d / total for d in densities])
                log_likelihood += math.log(total)

            # M-step: update weights, means, variances
            for j in range(k):
                resp_j = [responsibilities[i][j] for i in range(len(data))]
                total_resp = sum(resp_j)
                if total_resp <= 1e-12:
                    # dead component: re-seed it on a random sample
                    means[j] = self._rng.choice(data)
                    variances[j] = overall_variance
                    weights[j] = 1.0 / len(data)
                    continue
                weights[j] = total_resp / len(data)
                means[j] = sum(r * x for r, x in zip(resp_j, data)) / total_resp
                variances[j] = max(
                    sum(r * (x - means[j]) ** 2 for r, x in zip(resp_j, data)) / total_resp,
                    self.variance_floor,
                )

            weight_sum = sum(weights)
            weights = [w / weight_sum for w in weights]

            self.n_iterations_ = iteration
            improvement = log_likelihood - previous_log_likelihood
            if abs(improvement) < self.tolerance * max(abs(log_likelihood), 1.0):
                previous_log_likelihood = log_likelihood
                break
            previous_log_likelihood = log_likelihood

        self.log_likelihood_ = previous_log_likelihood
        self.components = [
            MixtureComponent(weight=weights[j], mean=means[j], std=math.sqrt(variances[j]))
            for j in range(k)
        ]
        return self

    def _initial_means(self, data: List[float], k: int) -> List[float]:
        """k-means++-style seeding: spread the initial means across the data."""
        means = [self._rng.choice(data)]
        while len(means) < k:
            distances = [min((x - m) ** 2 for m in means) for x in data]
            total = sum(distances)
            if total <= 0:
                means.append(self._rng.choice(data))
                continue
            threshold = self._rng.random() * total
            cumulative = 0.0
            chosen = data[-1]
            for x, distance in zip(data, distances):
                cumulative += distance
                if cumulative >= threshold:
                    chosen = x
                    break
            means.append(chosen)
        return means

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if not self.components:
            raise ConvergenceError("the mixture model has not been fitted yet")

    def pdf(self, x: float) -> float:
        """Mixture probability density ``f(x) = Σ_i π_i N(x; μ_i, σ_i)`` (Equation 13)."""
        self._require_fitted()
        return sum(c.weight * normal_pdf(x, c.mean, c.std) for c in self.components)

    def discrete_probability(self, value: int) -> float:
        """Continuity-corrected ``Pr[X = value]`` (Equation 14)."""
        self._require_fitted()
        return continuity_corrected_pmf(
            value,
            [c.weight for c in self.components],
            [c.mean for c in self.components],
            [c.std for c in self.components],
        )

    def sample(self, n: int, *, seed: RandomState = None) -> List[float]:
        """Draw ``n`` samples from the fitted mixture (for tests and examples)."""
        self._require_fitted()
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        weights = [c.weight for c in self.components]
        samples = []
        for _ in range(n):
            component = rng.choices(self.components, weights=weights, k=1)[0]
            samples.append(rng.gauss(component.mean, component.std))
        return samples

    # ------------------------------------------------------------------ #
    # serialization (used by the serving snapshot layer)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Return the fitted parameters as a plain, pickle/JSON-friendly dict."""
        self._require_fitted()
        return {
            "num_components": self.num_components,
            "components": [(c.weight, c.mean, c.std) for c in self.components],
            "log_likelihood": self.log_likelihood_,
            "n_iterations": self.n_iterations_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GaussianMixtureModel":
        """Rebuild a fitted mixture from :meth:`to_state` output."""
        model = cls(int(state["num_components"]))
        model.components = [
            MixtureComponent(weight=float(w), mean=float(m), std=float(s))
            for w, m, s in state["components"]
        ]
        model.log_likelihood_ = state.get("log_likelihood")
        model.n_iterations_ = int(state.get("n_iterations", 0))
        return model

    def __repr__(self) -> str:
        if not self.components:
            return f"<GaussianMixtureModel K={self.num_components} (unfitted)>"
        parts = ", ".join(
            f"(π={c.weight:.2f}, μ={c.mean:.2f}, σ={c.std:.2f})" for c in self.components
        )
        return f"<GaussianMixtureModel {parts}>"


def _variance(data: Sequence[float]) -> float:
    """Population variance of ``data`` (0.0 for constant/singleton data)."""
    if len(data) < 2:
        return 0.0
    mean = sum(data) / len(data)
    return sum((x - mean) ** 2 for x in data) / len(data)
