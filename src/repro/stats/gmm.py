"""Gaussian Mixture Model fitted with Expectation-Maximisation.

Section V-B of the paper estimates the prior distribution of GBDs by fitting
a user-chosen number ``K`` of Gaussian components to the GBDs of sampled
graph pairs (Equation 13) and reading discrete probabilities through the
continuity correction (Equation 14).

The implementation is a from-scratch univariate EM fit (no sklearn), with

* k-means++-style seeding of the component means,
* a variance floor to keep components from collapsing onto repeated
  integer-valued samples (GBDs are integers),
* a deterministic ``seed`` so offline pre-processing is reproducible, and
* two interchangeable EM backends: the original scalar Python loop
  (``backend="python"``) and a NumPy-vectorized loop
  (``backend="numpy"``, see :mod:`repro.offline.em`) that computes the
  responsibilities, M-step and log-likelihood as array operations over all
  samples at once.  Both share the same seeding and convergence semantics
  and agree to floating-point round-off; ``backend="auto"`` (the default)
  picks the vectorized path when numpy is importable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConvergenceError
from repro.stats.distributions import continuity_corrected_pmf, normal_pdf
from repro.stats.sampling import decode_rng_state, encode_rng_state

RandomState = Union[int, random.Random, None]

__all__ = ["GaussianMixtureModel", "MixtureComponent", "EM_BACKENDS"]

#: Valid values of the ``backend`` constructor argument.
EM_BACKENDS = ("auto", "numpy", "python")


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships with the toolchain
        return False
    return True


@dataclass(frozen=True)
class MixtureComponent:
    """A single Gaussian component ``π · N(μ, σ²)``."""

    weight: float
    mean: float
    std: float


class GaussianMixtureModel:
    """Univariate Gaussian mixture fitted with EM.

    Parameters
    ----------
    num_components:
        Number of mixture components ``K`` (user chosen, as in the paper).
    max_iterations:
        Maximum EM iterations (``ℓ`` in the paper's complexity analysis).
    tolerance:
        Relative log-likelihood improvement below which EM stops early.
    variance_floor:
        Lower bound on component variances; prevents degenerate spikes when
        many samples share the same integer value.
    seed:
        Seed (or ``random.Random``) controlling the k-means++ initialisation.
    backend:
        EM inner-loop implementation: ``"python"`` (scalar loop),
        ``"numpy"`` (vectorized, :mod:`repro.offline.em`) or ``"auto"``
        (numpy when importable, scalar otherwise).  Both backends share the
        seeding, random stream and convergence semantics.
    """

    def __init__(
        self,
        num_components: int = 3,
        *,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        variance_floor: float = 1e-3,
        seed: RandomState = 0,
        backend: str = "auto",
    ) -> None:
        if num_components < 1:
            raise ValueError("num_components must be at least 1")
        if backend not in EM_BACKENDS:
            raise ValueError(f"backend must be one of {EM_BACKENDS}, got {backend!r}")
        self.num_components = num_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.variance_floor = variance_floor
        self.backend = backend
        # Keep the original integer seed (when one was given) so to_state /
        # from_state can round-trip it; the live random stream is preserved
        # separately so a reloaded model refits exactly like the original.
        self._seed: Optional[int] = seed if isinstance(seed, int) else None
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        self.components: List[MixtureComponent] = []
        self.log_likelihood_: Optional[float] = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def resolved_backend(self) -> str:
        """The backend :meth:`fit` will actually run (``"auto"`` resolved)."""
        if self.backend == "auto":
            return "numpy" if _numpy_available() else "python"
        return self.backend

    def fit(self, samples: Sequence[float]) -> "GaussianMixtureModel":
        """Fit the mixture to 1-D ``samples`` and return ``self``."""
        data = [float(x) for x in samples]
        if not data:
            raise ConvergenceError("cannot fit a mixture to an empty sample")
        k = min(self.num_components, len(set(data))) or 1

        means = self._initial_means(data, k)
        overall_variance = max(_variance(data), self.variance_floor)
        variances = [overall_variance] * k
        weights = [1.0 / k] * k

        if self.resolved_backend() == "numpy":
            from repro.offline.em import run_em_numpy

            weights, means, variances, log_likelihood, n_iterations = run_em_numpy(
                data,
                means,
                variances,
                weights,
                overall_variance,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                variance_floor=self.variance_floor,
                rng=self._rng,
            )
        else:
            weights, means, variances, log_likelihood, n_iterations = self._run_em_python(
                data, means, variances, weights, overall_variance
            )

        self.n_iterations_ = n_iterations
        self.log_likelihood_ = log_likelihood
        self.components = [
            MixtureComponent(weight=weights[j], mean=means[j], std=math.sqrt(variances[j]))
            for j in range(k)
        ]
        return self

    def _run_em_python(
        self,
        data: List[float],
        means: List[float],
        variances: List[float],
        weights: List[float],
        overall_variance: float,
    ) -> Tuple[List[float], List[float], List[float], float, int]:
        """The original scalar EM loop (the ``backend="python"`` path)."""
        k = len(means)
        previous_log_likelihood = -math.inf
        n_iterations = 0
        for iteration in range(1, self.max_iterations + 1):
            # E-step: responsibilities
            responsibilities = []
            log_likelihood = 0.0
            for x in data:
                densities = [
                    weights[j] * normal_pdf(x, means[j], math.sqrt(variances[j]))
                    for j in range(k)
                ]
                total = sum(densities)
                if total <= 0.0:
                    total = 1e-300
                    densities = [1e-300 / k] * k
                responsibilities.append([d / total for d in densities])
                log_likelihood += math.log(total)

            # M-step: update weights, means, variances
            for j in range(k):
                resp_j = [responsibilities[i][j] for i in range(len(data))]
                total_resp = sum(resp_j)
                if total_resp <= 1e-12:
                    # dead component: re-seed it on a random sample
                    means[j] = self._rng.choice(data)
                    variances[j] = overall_variance
                    weights[j] = 1.0 / len(data)
                    continue
                weights[j] = total_resp / len(data)
                means[j] = sum(r * x for r, x in zip(resp_j, data)) / total_resp
                variances[j] = max(
                    sum(r * (x - means[j]) ** 2 for r, x in zip(resp_j, data)) / total_resp,
                    self.variance_floor,
                )

            weight_sum = sum(weights)
            weights = [w / weight_sum for w in weights]

            n_iterations = iteration
            improvement = log_likelihood - previous_log_likelihood
            if abs(improvement) < self.tolerance * max(abs(log_likelihood), 1.0):
                previous_log_likelihood = log_likelihood
                break
            previous_log_likelihood = log_likelihood

        return weights, means, variances, previous_log_likelihood, n_iterations

    def _initial_means(self, data: List[float], k: int) -> List[float]:
        """k-means++-style seeding: spread the initial means across the data.

        Seeding prefers *unseen* values: a value already chosen as a mean
        has squared distance zero and is skipped during the D²-weighted
        draw — the with-replacement pick used to let a zero threshold (or
        the rounding fallback) duplicate a mean, wasting components on
        identical starts with integer-heavy data.  The ``total <= 0``
        branch is a guard for the fully degenerate case (every squared
        distance zero, possible only when k exceeds the distinct-value
        count or through underflow) and likewise tries unseen distinct
        values before repeating one.
        """
        means: List[float] = [self._rng.choice(data)]
        seen = set(means)
        while len(means) < k:
            distances = [min((x - m) ** 2 for m in means) for x in data]
            total = sum(distances)
            if total <= 0:
                # Every data point coincides with a chosen mean; prefer an
                # unseen distinct value over re-seeding a duplicate.
                unseen = sorted(set(data) - seen)
                chosen = self._rng.choice(unseen) if unseen else self._rng.choice(data)
                means.append(chosen)
                seen.add(chosen)
                continue
            threshold = self._rng.random() * total
            cumulative = 0.0
            chosen = None
            fallback = None
            for x, distance in zip(data, distances):
                if distance <= 0.0:
                    # zero-weight point (already a mean): never select it,
                    # even when the threshold lands exactly on its cumulative
                    continue
                fallback = x
                cumulative += distance
                if cumulative >= threshold:
                    chosen = x
                    break
            if chosen is None:
                # floating-point rounding left the threshold unreached; the
                # last positive-weight value is the correct tail pick
                chosen = fallback
            means.append(chosen)
            seen.add(chosen)
        return means

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if not self.components:
            raise ConvergenceError("the mixture model has not been fitted yet")

    def pdf(self, x: float) -> float:
        """Mixture probability density ``f(x) = Σ_i π_i N(x; μ_i, σ_i)`` (Equation 13)."""
        self._require_fitted()
        return sum(c.weight * normal_pdf(x, c.mean, c.std) for c in self.components)

    def discrete_probability(self, value: int) -> float:
        """Continuity-corrected ``Pr[X = value]`` (Equation 14)."""
        self._require_fitted()
        return continuity_corrected_pmf(
            value,
            [c.weight for c in self.components],
            [c.mean for c in self.components],
            [c.std for c in self.components],
        )

    def sample(self, n: int, *, seed: RandomState = None) -> List[float]:
        """Draw ``n`` samples from the fitted mixture (for tests and examples)."""
        self._require_fitted()
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        weights = [c.weight for c in self.components]
        samples = []
        for _ in range(n):
            component = rng.choices(self.components, weights=weights, k=1)[0]
            samples.append(rng.gauss(component.mean, component.std))
        return samples

    # ------------------------------------------------------------------ #
    # serialization (used by the serving snapshot layer)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Return the fitted parameters as a plain, pickle/JSON-friendly dict.

        Besides the component parameters the state carries the original
        ``seed`` and the *current* random-stream state, so a model rebuilt
        with :meth:`from_state` refits on the exact same stream as the live
        instance — previously the seed was silently dropped and a reloaded
        model refitted with the default ``seed=0``.
        """
        self._require_fitted()
        return {
            "num_components": self.num_components,
            "components": [(c.weight, c.mean, c.std) for c in self.components],
            "log_likelihood": self.log_likelihood_,
            "n_iterations": self.n_iterations_,
            "seed": self._seed,
            "rng_state": encode_rng_state(self._rng),
            "backend": self.backend,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GaussianMixtureModel":
        """Rebuild a fitted mixture from :meth:`to_state` output."""
        seed = state.get("seed")
        model = cls(
            int(state["num_components"]),
            seed=seed if seed is not None else 0,
            backend=state.get("backend", "auto"),
        )
        model._seed = seed
        if state.get("rng_state") is not None:
            model._rng = decode_rng_state(state["rng_state"])
        model.components = [
            MixtureComponent(weight=float(w), mean=float(m), std=float(s))
            for w, m, s in state["components"]
        ]
        model.log_likelihood_ = state.get("log_likelihood")
        model.n_iterations_ = int(state.get("n_iterations", 0))
        return model

    def __repr__(self) -> str:
        if not self.components:
            return f"<GaussianMixtureModel K={self.num_components} (unfitted)>"
        parts = ", ".join(
            f"(π={c.weight:.2f}, μ={c.mean:.2f}, σ={c.std:.2f})" for c in self.components
        )
        return f"<GaussianMixtureModel {parts}>"


def _variance(data: Sequence[float]) -> float:
    """Population variance of ``data`` (0.0 for constant/singleton data)."""
    if len(data) < 2:
        return 0.0
    mean = sum(data) / len(data)
    return sum((x - mean) ** 2 for x in data) / len(data)
