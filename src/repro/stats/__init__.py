"""Statistics substrate: Gaussian mixtures, normal distributions, sampling.

These are the building blocks of the offline GBD-prior estimation of
Section V-B: sample graph pairs, fit a Gaussian Mixture Model to their GBDs
with EM, and read off discrete probabilities with a continuity correction.
"""

from repro.stats.distributions import (
    continuity_corrected_pmf,
    normal_cdf,
    normal_pdf,
)
from repro.stats.gmm import GaussianMixtureModel
from repro.stats.sampling import sample_pairs, sample_items

__all__ = [
    "GaussianMixtureModel",
    "normal_pdf",
    "normal_cdf",
    "continuity_corrected_pmf",
    "sample_pairs",
    "sample_items",
]
