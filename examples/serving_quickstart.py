"""Serving quickstart: fit → snapshot → load → batch-serve.

Walks the full lifecycle of the serving subsystem:

1. build a synthetic graph database and run the GBDA offline stage once,
2. wrap the fitted search in a :class:`BatchQueryEngine` and warm its
   posterior lookup tables,
3. persist the engine to a versioned snapshot on disk,
4. reload it in a "fresh server process" (no ``fit()``!) and serve a query
   stream through the concurrent :class:`ServingExecutor`, printing
   throughput, latency percentiles, and cache statistics.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path

from repro import (
    BatchQueryEngine,
    GBDASearch,
    GraphDatabase,
    ServingExecutor,
    SimilarityQuery,
)
from repro.graphs.generators import random_labeled_graph


def build_database(num_graphs: int = 500, seed: int = 0) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(num_graphs)
    ]
    return GraphDatabase(graphs, name="serving-demo")


def build_query_stream(num_queries: int = 60, seed: int = 1):
    """A skewed stream: a few hot queries repeated plus a random tail."""
    rng = random.Random(seed)
    hot = [
        SimilarityQuery(
            random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng),
            tau_hat=2,
            gamma=0.5,
        )
        for _ in range(5)
    ]
    stream = []
    for _ in range(num_queries):
        if rng.random() < 0.5:
            stream.append(rng.choice(hot))
        else:
            stream.append(
                SimilarityQuery(
                    random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng),
                    tau_hat=rng.randint(1, 3),
                    gamma=0.5,
                )
            )
    return stream


def main() -> None:
    # -- offline stage (paid once) ------------------------------------- #
    database = build_database()
    start = time.perf_counter()
    search = GBDASearch(database, max_tau=3, num_prior_pairs=400, seed=1).fit()
    print(f"offline fit over |D|={len(database)}: {time.perf_counter() - start:.2f}s")

    # -- build + warm + snapshot the engine ----------------------------- #
    engine = BatchQueryEngine.from_search(search)
    engine.warm(tau_hats=[1, 2, 3])
    snapshot_path = Path(tempfile.mkdtemp()) / "gbda-engine.snapshot"
    start = time.perf_counter()
    engine.save(snapshot_path)
    print(
        f"snapshot written to {snapshot_path} "
        f"({snapshot_path.stat().st_size / 1024:.0f} KiB, {time.perf_counter() - start:.3f}s)"
    )

    # -- "new server process": load without fitting --------------------- #
    start = time.perf_counter()
    served_engine = BatchQueryEngine.load(snapshot_path)
    print(f"engine restored in {time.perf_counter() - start:.3f}s (no fit!)")

    # -- batch-serve a skewed stream ------------------------------------ #
    stream = build_query_stream()
    executor = ServingExecutor(served_engine, num_workers=4, mode="thread")
    answers = executor.map(stream)
    stats = executor.last_stats
    print(f"served {stats.num_queries} queries in {stats.elapsed_seconds:.3f}s")
    print(f"  throughput: {stats.queries_per_second:.0f} QPS")
    print(f"  latency: p50={stats.p50_latency * 1e3:.2f}ms p95={stats.p95_latency * 1e3:.2f}ms")
    print(f"  cache: {stats.cache_hits} hits / {stats.cache_misses} misses "
          f"({stats.cache_hit_rate:.0%} hit rate)")
    sizes = [answer.size for answer in answers]
    print(f"  answer sizes: min={min(sizes)} mean={sum(sizes) / len(sizes):.1f} max={max(sizes)}")


if __name__ == "__main__":
    main()
