"""Molecule screening: find compounds similar to a query molecule.

This is the workload the paper's introduction motivates: searching a
molecular database (the AIDS antiviral screen setting) for compounds whose
structure is within a small edit distance of a query compound.  The example

1. generates an AIDS-like molecular dataset with exactly known ground truth,
2. runs GBDA and the LSAP / Greedy-Sort / Seriation competitors,
3. reports precision, recall, F1, and query time for each method.

Run with:  python examples/molecule_screening.py
"""

from __future__ import annotations

from repro.baselines import GreedySortGED, LSAPGED, SeriationGED
from repro.datasets import make_aids_like
from repro.evaluation.reporting import Table
from repro.evaluation.runner import ExperimentRunner


def main() -> None:
    # A laptop-sized molecular collection; crank num_templates/family_size up
    # to approach the published |D| = 1896.
    dataset = make_aids_like(
        num_templates=10, family_size=8, max_atoms=40, mode_atoms=20, seed=11
    )
    print(f"Dataset: {dataset}")
    print(f"Ground-truth pairs with known GED: {dataset.ground_truth.known_pairs()}")
    print()

    runner = ExperimentRunner(dataset, max_queries=4)
    tau_hat, gamma = 5, 0.8

    table = Table(
        f"Molecule screening at τ̂={tau_hat} (γ={gamma} for GBDA)",
        ["method", "precision", "recall", "F1", "avg query time (ms)"],
    )

    search = runner.gbda(max_tau=tau_hat, num_prior_pairs=500, seed=1)
    print(f"GBDA offline stage: {search.offline_seconds:.2f} s (priors over {len(runner.database)} molecules)")
    result = runner.run_gbda(search, tau_hat, gamma)
    table.add_row(result.method, result.precision, result.recall, result.f1,
                  result.average_query_seconds * 1000)

    for estimator in (LSAPGED(), GreedySortGED(), SeriationGED()):
        result = runner.run_baseline(estimator, tau_hat)
        table.add_row(result.method, result.precision, result.recall, result.f1,
                      result.average_query_seconds * 1000)

    print()
    print(table.render())
    print()
    print(
        "Expected shape (cf. Figures 7, 10-21 of the paper): GBDA answers queries\n"
        "orders of magnitude faster than LSAP while keeping competitive precision\n"
        "and recall; LSAP reaches recall 1.0 because its estimate lower-bounds GED."
    )


if __name__ == "__main__":
    main()
