"""Quickstart: graph similarity search with GBDA in a few lines.

Builds a tiny graph database (the paper's Figure 1 graphs plus a few
perturbed molecules), fits the offline priors, and answers a similarity
query — comparing the probabilistic answer with the exact GED ground truth
computed by the A* baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GBDASearch,
    Graph,
    GraphDatabase,
    exact_ged,
    graph_branch_distance,
)


def build_figure1_graphs():
    """The running example of the paper (Figure 1, Examples 1 and 2)."""
    g1 = Graph.from_dicts(
        {"v1": "A", "v2": "C", "v3": "B"},
        {("v1", "v2"): "y", ("v1", "v3"): "y", ("v2", "v3"): "z"},
        name="G1",
    )
    g2 = Graph.from_dicts(
        {"u1": "B", "u2": "A", "u3": "A", "u4": "C"},
        {("u1", "u3"): "x", ("u1", "u4"): "z", ("u2", "u4"): "y"},
        name="G2",
    )
    return g1, g2


def build_database(query: Graph) -> GraphDatabase:
    """A small database: close variants of the query plus unrelated graphs."""
    graphs = []
    # near neighbours: relabel one element at a time
    variant = query.copy(name="variant-edge")
    variant.relabel_edge("v1", "v2", "x")
    graphs.append(variant)

    variant = query.copy(name="variant-vertex")
    variant.relabel_vertex("v3", "D")
    graphs.append(variant)

    # an exact duplicate
    graphs.append(query.copy(name="duplicate"))

    # unrelated graphs with a different label vocabulary
    for index in range(4):
        stranger = Graph(name=f"stranger-{index}")
        for vertex in range(5):
            stranger.add_vertex(vertex, f"Q{(vertex + index) % 3}")
        for vertex in range(1, 5):
            stranger.add_edge(vertex - 1, vertex, "qq")
        graphs.append(stranger)
    return GraphDatabase(graphs, name="quickstart")


def main() -> None:
    g1, g2 = build_figure1_graphs()
    print("Paper running example:")
    print(f"  GBD(G1, G2) = {graph_branch_distance(g1, g2)}   (paper: 3)")
    print(f"  GED(G1, G2) = {exact_ged(g1, g2)}   (paper: 3)")
    print()

    query = g1
    database = build_database(query)
    print(f"Database: {database}")

    # Offline stage: fit the GBD prior (GMM) and the GED prior (Jeffreys).
    search = GBDASearch(database, max_tau=4, num_prior_pairs=50, seed=0).fit()
    print(f"Offline stage finished in {search.offline_seconds:.3f} s")
    print()

    # Online stage: probabilistic similarity search.
    tau_hat, gamma = 2, 0.5
    answer = search.search(query, tau_hat=tau_hat, gamma=gamma)
    print(f"GBDA answer for τ̂={tau_hat}, γ={gamma}: {sorted(answer.accepted_ids)}")
    print(f"  average online time: {answer.elapsed_seconds * 1000:.2f} ms")
    print()

    print("Per-graph comparison (GBDA posterior vs exact GED):")
    header = f"  {'graph':<16} {'GBD':>4} {'posterior':>10} {'accepted':>9} {'exact GED':>10}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for entry in database:
        gbd_value = database.gbd_to(query, entry.graph_id)
        posterior = search.posterior_for_pair(query, entry.graph_id, tau_hat)
        accepted = "yes" if entry.graph_id in answer.accepted_ids else "no"
        truth = exact_ged(query, entry.graph)
        print(
            f"  {entry.name:<16} {gbd_value:>4} {posterior:>10.3f} {accepted:>9} {truth:>10}"
        )


if __name__ == "__main__":
    main()
