"""Service-layer quickstart: serve GBDA similarity search over TCP.

Walks the full operational loop of :mod:`repro.service`:

1. fit the offline stage and save an engine snapshot;
2. start the asyncio server (here on a background thread; a production
   deployment would run ``SimilarityService.serve_forever()`` as the
   process' main loop);
3. answer queries from the blocking :class:`ServiceClient` — pipelined
   requests coalesce in the server's micro-batcher;
4. scrape the metrics endpoint (QPS, latency percentiles, batch
   occupancy, cache hit rate, admission counters);
5. inspect observability: print a sampled query trace's stage waterfall,
   the slow-query log, and the first lines of the Prometheus exposition;
6. hot-swap the engine from a new snapshot with zero downtime;
7. query through a *resilient* client — per-request deadlines, retry with
   capped exponential backoff, and a circuit breaker — and ride through a
   simulated crash + restart of the service.

Run with:  PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import json
import random
import tempfile
from pathlib import Path

from repro import BatchQueryEngine, GBDASearch, GraphDatabase, SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.exceptions import DeadlineExceededError
from repro.serving import save_engine
from repro.service import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    start_service_thread,
)


def build_snapshot(path: Path, num_graphs: int = 120, seed: int = 0) -> None:
    """Offline stage: fit a search on a synthetic database, snapshot the engine."""
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng.randint(6, 10), rng.randint(6, 14), seed=rng)
        for _ in range(num_graphs)
    ]
    database = GraphDatabase(graphs, name=f"quickstart-{num_graphs}")
    search = GBDASearch(database, max_tau=3, num_prior_pairs=150, seed=seed + 1).fit()
    engine = BatchQueryEngine.from_search(search)
    engine.model_version = seed  # stamp so reloads are visible in metrics
    save_engine(engine, path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    snapshot_v0 = workdir / "engine-v0.snapshot"
    snapshot_v1 = workdir / "engine-v1.snapshot"
    print("fitting the offline stage and writing snapshots ...")
    build_snapshot(snapshot_v0, seed=0)
    build_snapshot(snapshot_v1, num_graphs=160, seed=1)

    # -- start the server (loads the engine from the snapshot) ----------- #
    handle = start_service_thread(
        snapshot_path=snapshot_v0,
        max_batch=32,          # flush as soon as 32 queries are waiting ...
        max_delay_ms=2.0,      # ... or 2 ms after the first one arrived
        max_pending=256,       # shed load beyond 256 in-flight queries
        trace_sample_rate=1.0,  # demo: trace everything (production: ~0.01)
        slow_query_ms=0.0,      # demo: every query lands in the slow log
    )
    print(f"serving on {handle.host}:{handle.port}")

    try:
        with ServiceClient(*handle.address) as client:
            print("ping:", client.ping())

            # -- pipelined queries: one round-trip, one coalesced batch -- #
            rng = random.Random(42)
            queries = [
                SimilarityQuery(
                    random_labeled_graph(rng.randint(6, 10), rng.randint(6, 14), seed=rng),
                    tau_hat=rng.randint(1, 3),
                    gamma=0.5,
                )
                for _ in range(24)
            ]
            answers = client.query_many(queries)
            for query, answer in list(zip(queries, answers))[:5]:
                print(
                    f"  tau={query.tau_hat} gamma={query.gamma}: "
                    f"{answer.size} similar graphs"
                )

            # Top-k works over the wire too (the ranking is preserved).
            top = client.query(SimilarityQuery(queries[0].query_graph, 2, 0.5, top_k=3))
            print("  top-3:", [(gid, round(score, 4)) for gid, score in top.ranking])

            # -- scrape the metrics endpoint ----------------------------- #
            metrics = client.stats()
            print("metrics snapshot:")
            print(json.dumps(
                {
                    "qps_window": metrics["serving"]["num_queries"],
                    "p50_ms": round(metrics["serving"]["p50_latency"] * 1e3, 3),
                    "p99_ms": round(metrics["serving"]["p99_latency"] * 1e3, 3),
                    "mean_batch_size": metrics["batcher"]["mean_batch_size"],
                    "cache_hit_rate": (metrics["engine"]["cache"] or {}).get("hit_rate"),
                    "admission": metrics["admission"]["rejected"],
                    "model_version": metrics["engine"]["model_version"],
                },
                indent=2,
            ))

            # -- observability: trace waterfall, slow log, Prometheus ---- #
            trace = handle.service.tracer.recent[-1]
            print("sampled query trace (stage waterfall):")
            print("  " + trace.render().replace("\n", "\n  "))
            slow = client.slow()
            print(
                f"slow-query log: {slow['total_slow']} above "
                f"{slow['threshold_ms']}ms, worst recent "
                f"{max(e['latency_ms'] for e in slow['entries']):.3f}ms"
            )
            exposition = client.prometheus()
            print("prometheus exposition (first lines):")
            for line in exposition.splitlines()[:6]:
                print("  " + line)

            # -- zero-downtime hot swap ---------------------------------- #
            # (On unix, `kill -HUP <pid>` re-loads the configured snapshot
            # path; the admin command can point at any snapshot.)
            print("hot-swapping to engine v1 ...")
            result = client.reload(snapshot_v1)
            print("  reloaded:", result)
            answer = client.query(queries[0])
            print(f"  first query on v1: {answer.size} similar graphs")

        # -- resilience: deadlines, retries, breaker ---------------------- #
        # Production clients should always bound their waits and retry
        # transient failures (queries are idempotent reads; each logical
        # request keeps its idempotency key across attempts, so the server
        # never re-scores work it already answered).
        retry = RetryPolicy(max_attempts=5, base_delay_ms=25, max_delay_ms=500)
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_ms=1000)
        with ServiceClient(
            *handle.address,
            connect_timeout=5.0,
            read_timeout=10.0,
            retry=retry,
            breaker=breaker,
        ) as client:
            answer = client.query(queries[0], deadline_ms=5_000)
            print(
                f"resilient client: {answer.size} similar graphs "
                f"(deadline 5s, breaker {breaker.state})"
            )
            try:
                client.query(queries[1], deadline_ms=0.001)
            except DeadlineExceededError as exc:
                print(f"  1µs deadline refused unscored, as designed: {exc}")
            print(f"  retries so far: {retry.retries}")
    finally:
        handle.stop()
        print("server drained and stopped.")


if __name__ == "__main__":
    main()
