"""Offline prior analysis: what the GBDA model believes before seeing a query.

Reproduces the paper's Figures 5 and 6 in text form for a Fingerprint-like
dataset:

* the GBD prior — the Gaussian-mixture fit of sampled pair distances
  (Equation 13/14), printed as sampled-vs-inferred columns;
* the GED prior — the Jeffreys prior over (τ, |V'1|) derived from the Fisher
  information of the branch-edit model (Equation 16), printed as a matrix;
* the conditional model Λ1 itself for one extended order, so the reader can
  see how the probability mass of GBD spreads as GED grows.

Run with:  python examples/prior_analysis.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.model import BranchEditModel
from repro.datasets import make_fingerprint_like
from repro.db.database import GraphDatabase
from repro.evaluation.reporting import Table, format_series


def main() -> None:
    dataset = make_fingerprint_like(num_templates=8, family_size=8, seed=5)
    database = GraphDatabase(dataset.database_graphs, name=dataset.name)
    print(f"Dataset: {dataset}")
    print()

    # ------------------------------------------------------------------ #
    # Figure 5 analogue: GBD prior
    # ------------------------------------------------------------------ #
    prior = GBDPrior(num_components=3, num_pairs=500, seed=0).fit(dataset.database_graphs)
    samples = prior.report.sampled_gbds
    histogram = Counter(samples)
    x_values = list(range(0, 15))
    print(
        format_series(
            "GBD prior on the Fingerprint-like dataset (sampled vs inferred, cf. Figure 5)",
            "GBD",
            x_values,
            {
                "sampled": [histogram.get(v, 0) / len(samples) for v in x_values],
                "inferred": [prior.probability(v) for v in x_values],
            },
        )
    )
    print()
    print(f"Fitted mixture: {prior.mixture}")
    print()

    # ------------------------------------------------------------------ #
    # Figure 6 analogue: GED Jeffreys prior
    # ------------------------------------------------------------------ #
    orders = sorted({graph.num_vertices for graph in dataset.database_graphs})[:6]
    ged_prior = GEDPrior(
        max_tau=8,
        num_vertex_labels=database.num_vertex_labels,
        num_edge_labels=database.num_edge_labels,
    ).fit(orders)
    table = Table(
        "Jeffreys prior Pr[GED = τ] per extended order (cf. Figure 6)",
        ["τ \\ |V'1|"] + [str(order) for order in orders],
    )
    for tau in range(0, 9):
        table.add_row(tau, *[ged_prior.probability(tau, order) for order in orders])
    print(table.render())
    print()

    # ------------------------------------------------------------------ #
    # The conditional model Λ1 for one representative order
    # ------------------------------------------------------------------ #
    order = orders[len(orders) // 2]
    model = BranchEditModel(order, database.num_vertex_labels, database.num_edge_labels)
    conditional = Table(
        f"Conditional Pr[GBD = ϕ | GED = τ] for |V'1| = {order}",
        ["τ \\ ϕ"] + [str(phi) for phi in range(0, 9)],
    )
    for tau in range(0, 5):
        row = [model.lambda1(tau, phi) for phi in range(0, 9)]
        conditional.add_row(tau, *row)
    print(conditional.render())
    print()
    print(
        "Reading guide: as GED grows the conditional mass of GBD shifts right and\n"
        "spreads out — exactly the coupling the posterior of Algorithm 1 inverts."
    )


if __name__ == "__main__":
    main()
