"""Scalability sweep: online query time as graphs grow (Figures 8 & 9 in miniature).

GBDA's online stage costs ``O(nd + τ̂³)`` per database graph, versus
``O(n³)`` for the exact LSAP solution, ``O(n² log n²)`` for Greedy-Sort, and
``O(n·m²)``-ish for spectral seriation.  This example sweeps the graph size
on scale-free synthetic graphs with known GEDs and prints the measured query
time of every method, so the crossover is visible directly in the terminal.

Run with:  python examples/scalability_sweep.py          (default sizes)
           python examples/scalability_sweep.py 200 400  (custom sizes)
"""

from __future__ import annotations

import sys
import time

from repro.baselines import GreedySortGED, LSAPGED, SeriationGED
from repro.core.search import GBDASearch
from repro.datasets import make_syn1
from repro.db.database import GraphDatabase
from repro.evaluation.reporting import format_series


def measure(sizes) -> None:
    tau_hat = 10
    series = {"GBDA": [], "LSAP": [], "Greedy-Sort": [], "Seriation": []}

    for size in sizes:
        dataset = make_syn1(
            sizes=(size,), families_per_size=1, family_size=5, queries_per_size=1,
            max_distance=tau_hat, seed=3,
        )
        database = GraphDatabase(dataset.database_graphs, name=f"syn1-{size}")
        query = dataset.query_graphs[0]

        search = GBDASearch(database, max_tau=tau_hat, num_prior_pairs=20, seed=0).fit()
        start = time.perf_counter()
        gbda_answer = search.search(query, tau_hat=tau_hat, gamma=0.8)
        series["GBDA"].append(time.perf_counter() - start)

        for name, estimator in (
            ("LSAP", LSAPGED()),
            ("Greedy-Sort", GreedySortGED()),
            ("Seriation", SeriationGED()),
        ):
            start = time.perf_counter()
            for entry in database:
                estimator.estimate(query, entry.graph)
            series[name].append(time.perf_counter() - start)

        print(
            f"size={size:>5}: GBDA answered in {series['GBDA'][-1] * 1000:7.1f} ms "
            f"({gbda_answer.size} matches), LSAP needed {series['LSAP'][-1] * 1000:9.1f} ms"
        )

    print()
    print(format_series("Query time (seconds) vs graph size", "size", list(sizes), series))
    print()
    print(
        "Expected shape (cf. Figures 8-9): the gap between GBDA and the cubic/quadratic\n"
        "competitors widens as the graphs grow; at the largest size GBDA is fastest."
    )


def main() -> None:
    sizes = [int(argument) for argument in sys.argv[1:]] or [50, 100, 200]
    measure(sizes)


if __name__ == "__main__":
    main()
