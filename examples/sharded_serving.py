"""Shard-parallel (data-parallel) serving walkthrough.

Builds a synthetic database, fits the GBDA offline stage, and serves one
query stream three ways:

1. batched matrix scoring on the full database (``query_batch``),
2. in-process shard decomposition (``shard_engines`` + ``merge_answers``),
3. the ``"data-parallel"`` ServingExecutor mode — the database is
   partitioned into id-preserving shards, every process worker scores the
   whole stream against its shard through the batched path, and the
   per-shard answers are merged by union.

All three produce identical answers; data-parallel is the mode to reach
databases too large (or too slow) to score inside one process.

Run with:  PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

import random
import time

from repro import BatchQueryEngine, GBDASearch, GraphDatabase, ServingExecutor, SimilarityQuery
from repro.graphs.generators import random_labeled_graph

DATABASE_SIZE = 600
NUM_QUERIES = 24
NUM_SHARDS = 3


def main() -> None:
    rng = random.Random(0)
    graphs = [
        random_labeled_graph(rng.randint(7, 11), rng.randint(8, 16), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    database = GraphDatabase(graphs, name="sharded-demo")
    print(f"database: {database}")

    search = GBDASearch(database, max_tau=3, num_prior_pairs=300, seed=1).fit()
    print(f"offline stage done in {search.offline_seconds:.2f}s")

    qrng = random.Random(1)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(7, 11), qrng.randint(8, 16), seed=qrng),
            qrng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]

    # 1. batched matrix scoring on the full database
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    start = time.perf_counter()
    batched = engine.query_batch(queries)
    print(f"query_batch: {NUM_QUERIES / (time.perf_counter() - start):.0f} QPS")

    # 2. in-process shard decomposition (parity check for the merge)
    shard_engines = engine.shard_engines(NUM_SHARDS)
    print(f"shards: {[len(e.database) for e in shard_engines]} graphs each")
    merged = [
        BatchQueryEngine.merge_answers([e.query(query) for e in shard_engines])
        for query in queries
    ]

    # 3. data-parallel executor: shards across process workers
    executor = ServingExecutor(engine, num_workers=NUM_SHARDS, mode="data-parallel")
    start = time.perf_counter()
    parallel = executor.map(queries)
    elapsed = time.perf_counter() - start
    print(f"data-parallel ({NUM_SHARDS} workers): {NUM_QUERIES / elapsed:.0f} QPS")
    print(f"executor stats: {executor.last_stats}")

    for batch_answer, merge_answer, parallel_answer in zip(batched, merged, parallel):
        assert merge_answer.accepted_ids == batch_answer.accepted_ids
        assert parallel_answer.accepted_ids == batch_answer.accepted_ids
        assert parallel_answer.scores == batch_answer.scores
    sizes = [answer.size for answer in batched]
    print(f"all three paths identical; answer sizes: min={min(sizes)} max={max(sizes)}")


if __name__ == "__main__":
    main()
