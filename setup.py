"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose pip/setuptools cannot
perform PEP 660 editable installs (e.g. offline machines without the
``wheel`` package), via ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
