"""Packaging metadata for the GBDA reproduction.

``pip install -e .`` registers the ``repro`` package from ``src/`` so the
library can be imported without exporting ``PYTHONPATH`` manually; the
runtime dependencies match what the library imports at module load time
(``numpy`` for the serving engine and index, ``scipy`` for the seriation
baseline and combinatorics, ``networkx`` for the graph generators).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent


def _read_version() -> str:
    """Single source of truth: __version__ in src/repro/__init__.py."""
    text = (_HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-gbda",
    version=_read_version(),
    description=(
        "Reproduction of 'An Efficient Probabilistic Approach for Graph "
        "Similarity Search' (GBDA, ICDE 2018) with a batched serving engine"
    ),
    long_description=(_HERE / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The native kernel backend compiles this source on demand at runtime —
    # it must travel with the wheel/sdist.
    package_data={"repro.db.kernels": ["*.c"]},
    python_requires=">=3.8",
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
        # No extra Python packages — the native kernels only need a system C
        # compiler (cc/gcc/clang). The extra exists so deployments can declare
        # the intent ("this install expects the compiled backend") explicitly.
        "native": [],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
