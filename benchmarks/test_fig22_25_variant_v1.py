"""E-F22..25 — Figures 22–25: F1 of GBDA versus GBDA-V1 (α ∈ {10, 50})."""


def test_fig22_25_gbda_vs_v1(benchmark, variant_results, save_output):
    """Check the GBDA-vs-V1 comparison produced by the shared variant sweep."""
    rendered = []
    for name, output in variant_results.items():
        rendered.append(output.rendered)
        series = output.data["series"]
        tau_values = output.data["tau_values"]

        v1_labels = [label for label in series if label.startswith("V1")]
        assert v1_labels, "the sweep must include GBDA-V1 configurations"
        for label in ["GBDA"] + v1_labels:
            assert len(series[label]) == len(tau_values)
            assert all(0.0 <= value <= 1.0 for value in series[label])

        # Paper shape: for small thresholds GBDA is at least as good as V1
        # (using the per-pair extended order cannot hurt); allow a small
        # tolerance for sampling noise at this reduced scale.
        small_positions = [i for i, tau in enumerate(tau_values) if tau <= 4]
        for label in v1_labels:
            for position in small_positions:
                assert series["GBDA"][position] >= series[label][position] - 0.15, (
                    name,
                    label,
                    tau_values[position],
                )

    joined = "\n\n".join(rendered)

    class _Output:
        name = "fig22_25_variant_v1"
        rendered = joined
        data = {}

    save_output(_Output())
    benchmark(lambda: sum(len(o.data["series"]) for o in variant_results.values()))
