"""E-F6 — Figure 6: the Jeffreys prior of GEDs over the (τ, |V'1|) grid."""

from repro.experiments import run_figure6_ged_prior_matrix


def test_fig6_ged_prior_matrix(benchmark, real_datasets, scale, save_output):
    """Regenerate Figure 6 and benchmark the driver."""
    fingerprint = next(d for d in real_datasets if d.name == "Fingerprint")
    output = benchmark.pedantic(
        lambda: run_figure6_ged_prior_matrix(scale, dataset=fingerprint, max_tau=8),
        rounds=1,
        iterations=1,
    )
    save_output(output)

    matrix = output.data["matrix"]
    orders = output.data["orders"]
    assert len(orders) >= 1
    # Columns are probability distributions over τ.
    for column_index in range(len(orders)):
        column = [matrix[tau][column_index] for tau in matrix]
        assert abs(sum(column) - 1.0) < 1e-6
        assert all(value >= 0.0 for value in column)
