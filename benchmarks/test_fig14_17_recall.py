"""E-F14..17 — Figures 14–17: recall versus τ̂ on the four real datasets."""

from repro.evaluation.reporting import format_series


def test_fig14_17_recall_vs_tau(benchmark, effectiveness_results, save_output):
    """Slice the recall series out of the shared effectiveness sweep."""
    rendered_sections = []
    for name, output in effectiveness_results.items():
        tau_values = output.data["tau_values"]
        recall = output.data["series"]["recall"]
        rendered_sections.append(
            format_series(f"Figures 14–17 — recall vs τ̂ on {name}", "τ̂", tau_values, recall)
        )

        # The paper's structural observation: LSAP solves the assignment
        # exactly, its estimate is a lower bound of GED, hence recall = 1 at
        # every threshold.
        assert all(value == 1.0 for value in recall["LSAP"]), name

        # GBDA keeps high recall overall (the posterior filter is designed to
        # trade some precision, not to systematically miss answers): at this
        # reduced scale we require a mean recall of at least 0.6 for the
        # loosest γ setting and at least 0.4 for every setting.
        for method, values in recall.items():
            if method.startswith("GBDA"):
                assert sum(values) / len(values) >= 0.4, (name, method, values)
        loosest = min(
            (method for method in recall if method.startswith("GBDA")),
            key=lambda label: float(label.split("=")[1].rstrip(")")),
        )
        assert sum(recall[loosest]) / len(recall[loosest]) >= 0.6, (name, recall[loosest])

    class _Output:
        name = "fig14_17_recall"
        rendered = "\n\n".join(rendered_sections)
        data = {}

    save_output(_Output())
    benchmark(lambda: sum(len(o.data["series"]["recall"]) for o in effectiveness_results.values()))
