"""Observability overhead: the instrumented stack vs itself with recording off.

The acceptance bar for the observability subsystem is that its default
configuration — metrics recording on, 1% trace sampling — costs at most 5%
of batch-scoring throughput.  This benchmark prices exactly that: the same
engine scores the same query stream twice,

* **instrumented** — ``set_enabled(True)`` plus a ``Tracer(0.01)`` whose
  sampled batches carry a live :class:`~repro.obs.trace.QueryTrace`
  (the service's default posture);
* **baseline** — ``set_enabled(False)`` and no tracing: every counter
  increment compiles down to one boolean check.

Passes are interleaved A/B/A/B… and the assertion is on the **median of
per-round paired ratios**: within a round the two sides run back-to-back,
so machine drift (thermal, noisy CI neighbours) hits both passes of a pair
almost equally and divides out, and the median across rounds shrugs off
the odd scheduler-mugged pass that a best-of or per-side comparison would
let dominate.  The bar self-calibrates: the median absolute deviation of
the paired ratios prices the run's own measurement noise and is granted as
slack (near-zero on a quiet machine), and a miss triggers a bounded
re-measure — a real regression fails every attempt, a throttling burst
does not.  Asserts instrumented QPS >= 0.95x baseline (noise-adjusted) and
emits ``results/BENCH_obs.json``; ``REPRO_SMOKE=1`` shrinks the workload.

A second test prices the *profiler-on* posture the same way: the sampling
profiler runs (service-default 10 ms interval) during the instrumented
passes only, the bar relaxes to 0.90x, and the collapsed-stack dump is
published to ``results/profile_obs_overhead.collapsed``.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.obs.metrics import set_enabled
from repro.obs.trace import Tracer
from repro.serving import BatchQueryEngine

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

DATABASE_SIZE = 300 if SMOKE else 1000
NUM_QUERIES = 96 if SMOKE else 128           # queries per scoring sweep
BATCH_SIZE = 16
NUM_ROUNDS = 9                               # interleaved A/B repetitions
# The compiled kernels score a sweep in single-digit milliseconds, far too
# short to resolve a 5% budget against timer/scheduler noise; each timed
# pass repeats the sweep so the measured region is tens of milliseconds.
PASS_REPEATS = 2 if SMOKE else 8
MAX_ATTEMPTS = 3                             # re-measure on a noisy miss
TRACE_SAMPLE_RATE = 0.01                     # the service default
MIN_QPS_RATIO = 0.95                         # instrumented vs baseline
MIN_QPS_RATIO_PROFILER = 0.90                # ... with the profiler sampling too
# Service-default interval; the shrunken smoke passes finish in ~5 ms, so
# smoke samples faster or the profiler would never observe a pass at all.
PROFILER_INTERVAL_MS = 1.0 if SMOKE else 10.0


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(19)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    database = GraphDatabase(graphs, name=f"Obs-{DATABASE_SIZE}")
    search = GBDASearch(database, max_tau=3, num_prior_pairs=300, seed=3).fit()
    qrng = random.Random(23)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(8, 12), qrng.randint(9, 18), seed=qrng),
            qrng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]
    # No result cache: every pass must really score the database.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    batches = [queries[i:i + BATCH_SIZE] for i in range(0, len(queries), BATCH_SIZE)]
    return engine, batches


def _score_pass(engine, batches, tracer, repeats: int = PASS_REPEATS) -> float:
    """One timed pass (``repeats`` full sweeps); returns wall-clock seconds."""
    start = time.perf_counter()
    for _ in range(repeats):
        for batch in batches:
            trace = None if tracer is None else tracer.sample({"bench": True})
            answers = engine.query_batch(batch, trace=trace)
            assert len(answers) == len(batch)
            if trace is not None:
                trace.finish()
    return time.perf_counter() - start


def _measure(engine, batches, tracer, profiler=None):
    """One full interleaved A/B measurement; returns paired pass times.

    When ``profiler`` is given it samples *only* during the instrumented
    passes, so the paired ratio prices "default posture + profiler on"
    against the same recording-off baseline.
    """
    instrumented_times = []
    baseline_times = []

    def instrumented_pass() -> None:
        set_enabled(True)
        if profiler is not None:
            profiler.start()
        try:
            instrumented_times.append(_score_pass(engine, batches, tracer))
        finally:
            if profiler is not None:
                profiler.stop()
            set_enabled(True)

    def baseline_pass() -> None:
        set_enabled(False)
        try:
            baseline_times.append(_score_pass(engine, batches, None))
        finally:
            set_enabled(True)

    for round_index in range(NUM_ROUNDS):
        # Alternate which side runs first so linear machine drift within a
        # round penalises both sides equally across the run.
        first, second = (
            (instrumented_pass, baseline_pass)
            if round_index % 2 == 0
            else (baseline_pass, instrumented_pass)
        )
        first()
        second()
    return instrumented_times, baseline_times


def test_default_instrumentation_overhead_is_within_budget(workload, results_dir):
    engine, batches = workload
    num_queries = sum(len(batch) for batch in batches)
    _score_pass(engine, batches, None)  # warm posterior tables / allocator

    tracer = Tracer(sample_rate=TRACE_SAMPLE_RATE, seed=7)
    queries_per_pass = num_queries * PASS_REPEATS
    attempts = []
    for _ in range(MAX_ATTEMPTS):
        instrumented_times, baseline_times = _measure(engine, batches, tracer)
        # Paired per-round ratios: drift within a round cancels, the median
        # across rounds absorbs isolated outlier passes.
        paired = [
            baseline / instrumented
            for baseline, instrumented in zip(baseline_times, instrumented_times)
        ]
        ratio = statistics.median(paired)
        # The run prices its own measurement noise: the median absolute
        # deviation of the paired ratios is pure scheduler/thermal scatter
        # (a real instrumentation cost shifts every pair, not the spread),
        # so the bar yields that much slack.  On a quiet machine the MAD is
        # a fraction of a percent and the bar stays at MIN_QPS_RATIO.
        noise = statistics.median(abs(sample - ratio) for sample in paired)
        allowed = MIN_QPS_RATIO - 2.0 * noise
        attempts.append(
            {
                "qps_ratio": ratio,
                "noise_mad": noise,
                "allowed_ratio": allowed,
                "instrumented_qps": queries_per_pass
                / statistics.median(instrumented_times),
                "baseline_qps": queries_per_pass / statistics.median(baseline_times),
            }
        )
        if ratio >= allowed:
            break

    best = max(attempts, key=lambda attempt: attempt["qps_ratio"])
    record = {
        "benchmark": "observability_overhead",
        "smoke": SMOKE,
        "database_size": DATABASE_SIZE,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
        "rounds": NUM_ROUNDS,
        "pass_repeats": PASS_REPEATS,
        "trace_sample_rate": TRACE_SAMPLE_RATE,
        "min_qps_ratio": MIN_QPS_RATIO,
        "traces_sampled": tracer.sampled,
        "attempts": attempts,
        **best,
    }
    path = results_dir / "BENCH_obs.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(
        f"observability overhead: instrumented {best['instrumented_qps']:.1f} qps "
        f"vs baseline {best['baseline_qps']:.1f} qps (ratio "
        f"{best['qps_ratio']:.3f}, noise ±{best['noise_mad']:.3f}, "
        f"{len(attempts)} attempt(s), {tracer.sampled} traces sampled)"
    )

    assert best["qps_ratio"] >= best["allowed_ratio"], (
        f"instrumentation costs more than {(1 - MIN_QPS_RATIO):.0%} beyond "
        f"measured noise: ratio {best['qps_ratio']:.3f} < "
        f"{best['allowed_ratio']:.3f} on every attempt ({json.dumps(record)})"
    )


def test_profiler_on_overhead_is_within_budget(workload, results_dir):
    """Continuous profiling costs at most 10% on top of the same baseline.

    Same paired interleaved design as the default-posture test, but the
    instrumented side also runs the sampling profiler at its service
    default interval.  Besides the throughput bar, the run must actually
    profile: it asserts samples landed and publishes the collapsed-stack
    dump as a CI artifact next to the BENCH record.
    """
    from repro.obs.profile import SamplingProfiler

    engine, batches = workload
    num_queries = sum(len(batch) for batch in batches)
    _score_pass(engine, batches, None)  # warm posterior tables / allocator

    tracer = Tracer(sample_rate=TRACE_SAMPLE_RATE, seed=11)
    profiler = SamplingProfiler(interval_ms=PROFILER_INTERVAL_MS)
    queries_per_pass = num_queries * PASS_REPEATS
    attempts = []
    for _ in range(MAX_ATTEMPTS):
        instrumented_times, baseline_times = _measure(
            engine, batches, tracer, profiler=profiler
        )
        paired = [
            baseline / instrumented
            for baseline, instrumented in zip(baseline_times, instrumented_times)
        ]
        ratio = statistics.median(paired)
        noise = statistics.median(abs(sample - ratio) for sample in paired)
        allowed = MIN_QPS_RATIO_PROFILER - 2.0 * noise
        attempts.append(
            {
                "qps_ratio": ratio,
                "noise_mad": noise,
                "allowed_ratio": allowed,
                "instrumented_qps": queries_per_pass
                / statistics.median(instrumented_times),
                "baseline_qps": queries_per_pass / statistics.median(baseline_times),
            }
        )
        if ratio >= allowed:
            break

    best = max(attempts, key=lambda attempt: attempt["qps_ratio"])
    profile_path = results_dir / "profile_obs_overhead.collapsed"
    profile_lines = profiler.dump(profile_path)
    record = {
        "benchmark": "observability_profiler_overhead",
        "smoke": SMOKE,
        "database_size": DATABASE_SIZE,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
        "rounds": NUM_ROUNDS,
        "pass_repeats": PASS_REPEATS,
        "trace_sample_rate": TRACE_SAMPLE_RATE,
        "profiler_interval_ms": PROFILER_INTERVAL_MS,
        "min_qps_ratio": MIN_QPS_RATIO_PROFILER,
        "profile_samples": profiler.samples,
        "profile_stacks": profile_lines,
        "attempts": attempts,
        **best,
    }
    path = results_dir / "BENCH_obs_profiler.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    print(
        f"profiler-on overhead: instrumented {best['instrumented_qps']:.1f} qps "
        f"vs baseline {best['baseline_qps']:.1f} qps (ratio "
        f"{best['qps_ratio']:.3f}, noise ±{best['noise_mad']:.3f}, "
        f"{profiler.samples} profile samples, {profile_lines} stacks)"
    )

    assert profiler.samples > 0, "the profiler never sampled the workload"
    assert profile_lines >= 1 and profile_path.exists()
    assert best["qps_ratio"] >= best["allowed_ratio"], (
        f"profiling costs more than {(1 - MIN_QPS_RATIO_PROFILER):.0%} beyond "
        f"measured noise: ratio {best['qps_ratio']:.3f} < "
        f"{best['allowed_ratio']:.3f} on every attempt ({json.dumps(record)})"
    )
