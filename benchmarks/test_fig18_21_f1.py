"""E-F18..21 — Figures 18–21: F1-score versus τ̂ on the four real datasets."""

from repro.evaluation.reporting import format_series


def test_fig18_21_f1_vs_tau(benchmark, effectiveness_results, save_output):
    """Slice the F1 series out of the shared effectiveness sweep."""
    rendered_sections = []
    for name, output in effectiveness_results.items():
        tau_values = output.data["tau_values"]
        f1 = output.data["series"]["f1"]
        rendered_sections.append(
            format_series(f"Figures 18–21 — F1 vs τ̂ on {name}", "τ̂", tau_values, f1)
        )

        for method, values in f1.items():
            assert all(0.0 <= value <= 1.0 for value in values), method

        # Headline shape: GBDA's best F1 beats the Seriation baseline on every
        # dataset, and is competitive with (within 25% of) the best baseline.
        gbda_best = max(
            max(values) for method, values in f1.items() if method.startswith("GBDA")
        )
        assert gbda_best > max(f1["Seriation"]) - 1e-9, name
        best_baseline = max(max(values) for method, values in f1.items() if not method.startswith("GBDA"))
        assert gbda_best >= 0.75 * best_baseline, (name, gbda_best, best_baseline)

    class _Output:
        name = "fig18_21_f1"
        rendered = "\n\n".join(rendered_sections)
        data = {}

    save_output(_Output())
    benchmark(lambda: sum(len(o.data["series"]["f1"]) for o in effectiveness_results.values()))
