"""E-T3 — Table III: dataset statistics (measured vs published)."""

from repro.db.catalog import DatabaseCatalog
from repro.db.database import GraphDatabase
from repro.experiments import run_table3


def test_table3_dataset_statistics(benchmark, all_datasets, scale, save_output):
    """Regenerate Table III and benchmark the catalog computation itself."""
    output = run_table3(scale, datasets=all_datasets)
    save_output(output)

    # Shape checks: every generated dataset stays within the published regime.
    measured = output.data["measured"]
    paper = output.data["paper"]
    for name, row in measured.items():
        assert row["|D|"] > 0 and row["|Q|"] > 0
        if name in paper:
            assert row["Vm"] <= paper[name]["Vm"], f"{name}: generated graphs exceed the published maximum"
    assert measured["AIDS"]["Scale-free"] == "Yes"
    assert measured["Syn-2"]["Scale-free"] == "No"

    # Benchmark kernel: cataloguing the largest look-alike database.
    largest = max(all_datasets, key=lambda dataset: len(dataset.database_graphs))
    database = GraphDatabase(largest.database_graphs, name=largest.name)
    benchmark(lambda: DatabaseCatalog.from_database(database, queries=largest.query_graphs))
