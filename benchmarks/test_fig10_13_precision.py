"""E-F10..13 — Figures 10–13: precision versus τ̂ on the four real datasets."""

from repro.evaluation.reporting import format_series


def test_fig10_13_precision_vs_tau(benchmark, effectiveness_results, save_output):
    """Slice the precision series out of the shared effectiveness sweep."""
    rendered_sections = []
    for name, output in effectiveness_results.items():
        tau_values = output.data["tau_values"]
        precision = output.data["series"]["precision"]
        rendered_sections.append(
            format_series(f"Figures 10–13 — precision vs τ̂ on {name}", "τ̂", tau_values, precision)
        )

        # Every method reports a valid precision at every threshold.
        for method, values in precision.items():
            assert len(values) == len(tau_values)
            assert all(0.0 <= value <= 1.0 for value in values), method

        # GBDA's precision is not degenerate: at the smallest threshold it is
        # strictly positive for at least one γ setting.
        gbda_first = [values[0] for method, values in precision.items() if method.startswith("GBDA")]
        assert max(gbda_first) > 0.0

    class _Output:
        name = "fig10_13_precision"
        rendered = "\n\n".join(rendered_sections)
        data = {}

    save_output(_Output())
    benchmark(lambda: sum(len(o.data["series"]["precision"]) for o in effectiveness_results.values()))
