"""Serving-engine throughput: per-pair loop vs vectorized vs batched matrix.

Builds a 2000-graph synthetic database, fits the GBDA offline stage once,
and answers the same query stream through every online execution path:

* the faithful per-pair loop of :meth:`GBDASearch.query_reference`
  (Algorithm 1 exactly as written — one branch-multiset merge and one
  posterior evaluation per database graph),
* the per-query loop API :meth:`GBDASearch.query` (now a thin wrapper over
  the shared :class:`~repro.core.plan.ExecutionCore` — columnar index GBDs
  plus posterior-table lookups, full dict outputs),
* per-query :meth:`BatchQueryEngine.query` (vectorized single-query
  serving), and
* the true batched matrix path :meth:`BatchQueryEngine.query_batch` — one
  ``(Q, D)`` columnar intersection pass and shared ``(τ̂, |V'1|)`` tables
  per τ̂/γ group — plus the shard-parallel ``"data-parallel"`` executor
  decomposition of the same scoring.

Assertions: every path's accepted sets (and posterior scores, where the
configuration retains them) are bit-identical to ``GBDASearch.query``; the
vectorized engine clears 3x the per-query ``GBDASearch.query`` loop; and
the batched matrix path clears 2x that per-query loop baseline while never
regressing against per-query engine serving.  (Since this refactor routes
``BatchQueryEngine.query`` itself through the same columnar core, single
and batched engine scoring are both memory-bound on the same postings
traversal — the headline batching win is measured against the per-query
loop API, and the single-engine comparison is kept as a no-regression
guard.)

Setting ``REPRO_SMOKE=1`` (the CI smoke job) shrinks the workload and
keeps only the parity assertions; rendered tables land in
``results/serving_throughput.txt``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, ServingExecutor

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

DATABASE_SIZE = 300 if SMOKE else 2000
NUM_QUERIES = 10 if SMOKE else 30
MIN_SPEEDUP = 3.0          # vectorized engine vs per-query GBDASearch.query
MIN_BATCH_SPEEDUP = 2.0    # batched matrix path vs per-query GBDASearch.query
MIN_BATCH_VS_SINGLE = 0.8  # batched must never regress vs per-query engine


def _build_database(seed: int = 0) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    return GraphDatabase(graphs, name=f"Syn-{DATABASE_SIZE}")


def _build_queries(seed: int = 1):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng),
            rng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]


@pytest.fixture(scope="module")
def workload():
    """Database, fitted search, and query stream shared by both benchmarks."""
    database = _build_database()
    search = GBDASearch(database, max_tau=3, num_prior_pairs=400, seed=1).fit()
    return database, search, _build_queries()


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` passes (shields against scheduler noise)."""
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_engine_throughput_beats_query_loop(workload, results_dir):
    database, search, queries = workload

    # Per-query loop (the GBDASearch.query API); best of two passes so a
    # scheduler hiccup on a noisy CI runner cannot skew the baseline.
    loop_seconds, loop_answers = _best_of(2, lambda: [search.query(q).answer for q in queries])
    loop_qps = len(queries) / loop_seconds

    # The scalar per-pair reference (Algorithm 1 as written) — one pass is
    # plenty: it is orders of magnitude slower and only reported.
    reference_seconds, reference_answers = _best_of(
        1, lambda: [search.query_reference(q).answer for q in queries]
    )
    reference_qps = len(queries) / reference_seconds

    # Batched engine without a result cache so every pass really scores the
    # database.  Pass 1 is cold (lazy posterior tables built inside the
    # measured window); pass 2 is the steady state of a running server.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    cold_seconds, engine_answers = _best_of(1, lambda: [engine.query(q) for q in queries])
    warm_seconds, _ = _best_of(1, lambda: [engine.query(q) for q in queries])
    engine_seconds = min(cold_seconds, warm_seconds)
    engine_qps = len(queries) / engine_seconds

    # Correctness first: every path must reproduce the loop exactly.
    for loop_answer, reference_answer, engine_answer in zip(
        loop_answers, reference_answers, engine_answers
    ):
        assert loop_answer.accepted_ids == reference_answer.accepted_ids
        assert loop_answer.scores == reference_answer.scores
        assert engine_answer.accepted_ids == loop_answer.accepted_ids

    # Hot pass through the executor on a cache-backed engine: a repeated
    # stream is answered from the LRU.
    cached_engine = BatchQueryEngine.from_search(search)
    executor = ServingExecutor(cached_engine, num_workers=4, mode="thread")
    executor.map(queries)
    executor.map(queries)
    hot_stats = executor.last_stats

    speedup = engine_qps / loop_qps
    lines = [
        f"Serving throughput on |D|={DATABASE_SIZE}, {len(queries)} queries "
        f"(tau in 1..3, gamma=0.5)",
        "",
        f"{'method':<38}{'seconds':>10}{'QPS':>12}",
        f"{'per-pair reference loop':<38}{reference_seconds:>10.3f}{reference_qps:>12.1f}",
        f"{'per-query loop (GBDASearch)':<38}{loop_seconds:>10.3f}{loop_qps:>12.1f}",
        f"{'BatchQueryEngine (cold tables)':<38}{cold_seconds:>10.3f}"
        f"{len(queries) / cold_seconds:>12.1f}",
        f"{'BatchQueryEngine (warm tables)':<38}{warm_seconds:>10.3f}"
        f"{len(queries) / warm_seconds:>12.1f}",
        f"{'ServingExecutor (LRU-hot)':<38}{hot_stats.elapsed_seconds:>10.3f}"
        f"{hot_stats.queries_per_second:>12.1f}",
        "",
        f"engine speedup over loop: {speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
        f"hot-pass cache hit rate: {hot_stats.cache_hit_rate:.0%}",
        f"posterior tables materialised: {engine.num_cached_tables}",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_throughput.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"engine QPS {engine_qps:.1f} is only {speedup:.2f}x the loop QPS {loop_qps:.1f}"
        )


def test_batched_matrix_and_sharded_parity(workload, results_dir):
    """Batched matrix scoring: ≥2x the per-query loop, bit-identical answers."""
    database, search, queries = workload

    # Reference answers (full posteriors) from the per-query loop API.
    loop_results = [search.query(query) for query in queries]
    loop_seconds, _ = _best_of(2, lambda: [search.query(q) for q in queries])
    loop_qps = len(queries) / loop_seconds

    # Per-query vs batched on identically configured engines (no result
    # cache, default keep_scores) — the no-regression comparison.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    engine.query_batch(queries)  # warm the shared posterior tables
    single_seconds, single_answers = _best_of(2, lambda: [engine.query(q) for q in queries])
    batch_seconds, batch_answers = _best_of(2, lambda: engine.query_batch(queries))
    single_qps = len(queries) / single_seconds
    batch_qps = len(queries) / batch_seconds

    # Bit-identical accepted sets everywhere; the default configuration
    # retains accepted scores — they must equal the loop's posteriors.
    for loop_result, single_answer, batch_answer in zip(
        loop_results, single_answers, batch_answers
    ):
        expected_ids = loop_result.answer.accepted_ids
        assert single_answer.accepted_ids == expected_ids
        assert batch_answer.accepted_ids == expected_ids
        expected_scores = {gid: loop_result.posteriors[gid] for gid in expected_ids}
        assert single_answer.scores == expected_scores
        assert batch_answer.scores == expected_scores

    # Full-score parity: keep_scores="all" answers carry every candidate's
    # posterior and must be bit-identical to GBDASearch.query's dicts.
    full_engine = BatchQueryEngine.from_search(search, cache_size=None, keep_scores="all")
    for loop_result, full_answer in zip(loop_results, full_engine.query_batch(queries)):
        assert full_answer.accepted_ids == loop_result.answer.accepted_ids
        assert full_answer.scores == loop_result.posteriors

    # Shard-parallel (data-parallel) scoring: the same parity assertion.
    executor = ServingExecutor(full_engine, num_workers=2, mode="data-parallel")
    sharded_start = time.perf_counter()
    sharded_answers = executor.map(queries)
    sharded_seconds = time.perf_counter() - sharded_start
    for loop_result, sharded_answer in zip(loop_results, sharded_answers):
        assert sharded_answer.accepted_ids == loop_result.answer.accepted_ids
        assert sharded_answer.scores == loop_result.posteriors

    batch_speedup = batch_qps / loop_qps
    batch_vs_single = batch_qps / single_qps
    lines = [
        f"Batched matrix scoring on |D|={DATABASE_SIZE}, {len(queries)} queries",
        "",
        f"{'method':<38}{'seconds':>10}{'QPS':>12}",
        f"{'per-query loop (GBDASearch)':<38}{loop_seconds:>10.3f}{loop_qps:>12.1f}",
        f"{'per-query BatchQueryEngine.query':<38}{single_seconds:>10.3f}{single_qps:>12.1f}",
        f"{'batched query_batch (matrix)':<38}{batch_seconds:>10.3f}{batch_qps:>12.1f}",
        f"{'data-parallel, 2 shards (procs)':<38}{sharded_seconds:>10.3f}"
        f"{len(queries) / sharded_seconds:>12.1f}",
        "",
        f"batched speedup over loop: {batch_speedup:.1f}x "
        f"(required >= {MIN_BATCH_SPEEDUP:.0f}x)",
        f"batched vs per-query engine: {batch_vs_single:.2f}x "
        f"(required >= {MIN_BATCH_VS_SINGLE:.1f}x)",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_throughput_batched.txt").write_text(
        rendered + "\n", encoding="utf-8"
    )
    print()
    print(rendered)

    if not SMOKE:
        assert batch_speedup >= MIN_BATCH_SPEEDUP, (
            f"batched QPS {batch_qps:.1f} is only {batch_speedup:.2f}x "
            f"the per-query loop QPS {loop_qps:.1f}"
        )
        assert batch_vs_single >= MIN_BATCH_VS_SINGLE, (
            f"batched QPS {batch_qps:.1f} regressed to {batch_vs_single:.2f}x "
            f"of per-query engine QPS {single_qps:.1f}"
        )
