"""Serving-engine throughput: per-pair loop vs vectorized vs batched matrix.

Builds a 2000-graph synthetic database, fits the GBDA offline stage once,
and answers the same query stream through every online execution path:

* the faithful per-pair loop of :meth:`GBDASearch.query_reference`
  (Algorithm 1 exactly as written — one branch-multiset merge and one
  posterior evaluation per database graph),
* the per-query loop API :meth:`GBDASearch.query` (now a thin wrapper over
  the shared :class:`~repro.core.plan.ExecutionCore` — columnar index GBDs
  plus posterior-table lookups, full dict outputs),
* per-query :meth:`BatchQueryEngine.query` (vectorized single-query
  serving), and
* the true batched matrix path :meth:`BatchQueryEngine.query_batch` — one
  ``(Q, D)`` columnar intersection pass and shared ``(τ̂, |V'1|)`` tables
  per τ̂/γ group — plus the shard-parallel ``"data-parallel"`` executor
  decomposition of the same scoring.

Assertions: every path's accepted sets (and posterior scores, where the
configuration retains them) are bit-identical to ``GBDASearch.query``; the
vectorized engine clears 3x the per-query ``GBDASearch.query`` loop; and
the batched matrix path clears 2x that per-query loop baseline while never
regressing against per-query engine serving.  (Since this refactor routes
``BatchQueryEngine.query`` itself through the same columnar core, single
and batched engine scoring are both memory-bound on the same postings
traversal — the headline batching win is measured against the per-query
loop API, and the single-engine comparison is kept as a no-regression
guard.)

A third benchmark exercises the pruned filter-and-verify execution layer
on a selective workload (size-diverse database, small queries, small τ̂,
high γ) under **every available kernel backend**: the γ-threshold
inversion plus the GBD lower bound must clear a per-backend QPS multiple
of the unpruned engine (3x for numpy; 1.3x for native, whose compiled
kernels speed the unpruned dense scan up several-fold too, shrinking the
*relative* win while raising absolute QPS) with bit-identical answers.
The run emits the machine-readable ``results/BENCH_serving.json`` (QPS
per backend, prune rate, latency percentiles) that CI uploads as an
artifact.

Setting ``REPRO_SMOKE=1`` (the CI smoke job) shrinks the workload and
keeps only the parity assertions; rendered tables land in
``results/serving_throughput.txt`` / ``serving_selective.txt``.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.kernels import available_backends
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, ServingExecutor

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

DATABASE_SIZE = 300 if SMOKE else 2000
NUM_QUERIES = 10 if SMOKE else 30
MIN_SPEEDUP = 3.0          # vectorized engine vs per-query GBDASearch.query
MIN_BATCH_SPEEDUP = 2.0    # batched matrix path vs per-query GBDASearch.query
MIN_BATCH_VS_SINGLE = 0.8  # batched must never regress vs per-query engine

# Selective filter-and-verify workload: small queries with tight thresholds
# against a size-diverse database, so the GBD lower bound eliminates most of
# the database per query (high γ, small τ̂ — the paper's filtering sweet spot).
# Smoke mode keeps the size spread narrow enough that the posterior tables
# stay worth building for a 400-graph database.
SELECTIVE_DB_SIZE = 400 if SMOKE else 16_000
SELECTIVE_MAX_ORDER = 40 if SMOKE else 120
SELECTIVE_QUERIES = 8 if SMOKE else 24
# Pruned-vs-unpruned QPS bar per kernel backend.  The 3x numpy bar is the
# original memory-bandwidth argument (the dense scan reads every posting, the
# filter reads almost none).  The native C kernels make the *dense* scan
# itself several-fold faster, so the relative pruning win shrinks there even
# though absolute pruned QPS rises — the bar prices that honestly instead of
# demanding a ratio the compiled dense path no longer leaves on the table.
MIN_PRUNED_SPEEDUP = {"numpy": 3.0, "native": 1.3}


def _build_database(seed: int = 0) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    return GraphDatabase(graphs, name=f"Syn-{DATABASE_SIZE}")


def _build_queries(seed: int = 1):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng),
            rng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]


@pytest.fixture(scope="module")
def workload():
    """Database, fitted search, and query stream shared by both benchmarks."""
    database = _build_database()
    search = GBDASearch(database, max_tau=3, num_prior_pairs=400, seed=1).fit()
    return database, search, _build_queries()


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` passes (shields against scheduler noise)."""
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_engine_throughput_beats_query_loop(workload, results_dir):
    database, search, queries = workload

    # Per-query loop (the GBDASearch.query API); best of two passes so a
    # scheduler hiccup on a noisy CI runner cannot skew the baseline.
    loop_seconds, loop_answers = _best_of(2, lambda: [search.query(q).answer for q in queries])
    loop_qps = len(queries) / loop_seconds

    # The scalar per-pair reference (Algorithm 1 as written) — one pass is
    # plenty: it is orders of magnitude slower and only reported.
    reference_seconds, reference_answers = _best_of(
        1, lambda: [search.query_reference(q).answer for q in queries]
    )
    reference_qps = len(queries) / reference_seconds

    # Batched engine without a result cache so every pass really scores the
    # database.  Pass 1 is cold (lazy posterior tables built inside the
    # measured window); pass 2 is the steady state of a running server.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    cold_seconds, engine_answers = _best_of(1, lambda: [engine.query(q) for q in queries])
    warm_seconds, _ = _best_of(1, lambda: [engine.query(q) for q in queries])
    engine_seconds = min(cold_seconds, warm_seconds)
    engine_qps = len(queries) / engine_seconds

    # Correctness first: every path must reproduce the loop exactly.
    for loop_answer, reference_answer, engine_answer in zip(
        loop_answers, reference_answers, engine_answers
    ):
        assert loop_answer.accepted_ids == reference_answer.accepted_ids
        assert loop_answer.scores == reference_answer.scores
        assert engine_answer.accepted_ids == loop_answer.accepted_ids

    # Hot pass through the executor on a cache-backed engine: a repeated
    # stream is answered from the LRU.
    cached_engine = BatchQueryEngine.from_search(search)
    executor = ServingExecutor(cached_engine, num_workers=4, mode="thread")
    executor.map(queries)
    executor.map(queries)
    hot_stats = executor.last_stats

    speedup = engine_qps / loop_qps
    lines = [
        f"Serving throughput on |D|={DATABASE_SIZE}, {len(queries)} queries "
        f"(tau in 1..3, gamma=0.5)",
        "",
        f"{'method':<38}{'seconds':>10}{'QPS':>12}",
        f"{'per-pair reference loop':<38}{reference_seconds:>10.3f}{reference_qps:>12.1f}",
        f"{'per-query loop (GBDASearch)':<38}{loop_seconds:>10.3f}{loop_qps:>12.1f}",
        f"{'BatchQueryEngine (cold tables)':<38}{cold_seconds:>10.3f}"
        f"{len(queries) / cold_seconds:>12.1f}",
        f"{'BatchQueryEngine (warm tables)':<38}{warm_seconds:>10.3f}"
        f"{len(queries) / warm_seconds:>12.1f}",
        f"{'ServingExecutor (LRU-hot)':<38}{hot_stats.elapsed_seconds:>10.3f}"
        f"{hot_stats.queries_per_second:>12.1f}",
        "",
        f"engine speedup over loop: {speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
        f"hot-pass cache hit rate: {hot_stats.cache_hit_rate:.0%}",
        f"posterior tables materialised: {engine.num_cached_tables}",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_throughput.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"engine QPS {engine_qps:.1f} is only {speedup:.2f}x the loop QPS {loop_qps:.1f}"
        )


def test_batched_matrix_and_sharded_parity(workload, results_dir):
    """Batched matrix scoring: ≥2x the per-query loop, bit-identical answers."""
    database, search, queries = workload

    # Reference answers (full posteriors) from the per-query loop API.
    loop_results = [search.query(query) for query in queries]
    loop_seconds, _ = _best_of(2, lambda: [search.query(q) for q in queries])
    loop_qps = len(queries) / loop_seconds

    # Per-query vs batched on identically configured engines (no result
    # cache, default keep_scores) — the no-regression comparison.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    engine.query_batch(queries)  # warm the shared posterior tables
    single_seconds, single_answers = _best_of(2, lambda: [engine.query(q) for q in queries])
    batch_seconds, batch_answers = _best_of(2, lambda: engine.query_batch(queries))
    single_qps = len(queries) / single_seconds
    batch_qps = len(queries) / batch_seconds

    # Bit-identical accepted sets everywhere; the default configuration
    # retains accepted scores — they must equal the loop's posteriors.
    for loop_result, single_answer, batch_answer in zip(
        loop_results, single_answers, batch_answers
    ):
        expected_ids = loop_result.answer.accepted_ids
        assert single_answer.accepted_ids == expected_ids
        assert batch_answer.accepted_ids == expected_ids
        expected_scores = {gid: loop_result.posteriors[gid] for gid in expected_ids}
        assert single_answer.scores == expected_scores
        assert batch_answer.scores == expected_scores

    # Full-score parity: keep_scores="all" answers carry every candidate's
    # posterior and must be bit-identical to GBDASearch.query's dicts.
    full_engine = BatchQueryEngine.from_search(search, cache_size=None, keep_scores="all")
    for loop_result, full_answer in zip(loop_results, full_engine.query_batch(queries)):
        assert full_answer.accepted_ids == loop_result.answer.accepted_ids
        assert full_answer.scores == loop_result.posteriors

    # Shard-parallel (data-parallel) scoring: the same parity assertion.
    executor = ServingExecutor(full_engine, num_workers=2, mode="data-parallel")
    sharded_start = time.perf_counter()
    sharded_answers = executor.map(queries)
    sharded_seconds = time.perf_counter() - sharded_start
    for loop_result, sharded_answer in zip(loop_results, sharded_answers):
        assert sharded_answer.accepted_ids == loop_result.answer.accepted_ids
        assert sharded_answer.scores == loop_result.posteriors

    batch_speedup = batch_qps / loop_qps
    batch_vs_single = batch_qps / single_qps
    lines = [
        f"Batched matrix scoring on |D|={DATABASE_SIZE}, {len(queries)} queries",
        "",
        f"{'method':<38}{'seconds':>10}{'QPS':>12}",
        f"{'per-query loop (GBDASearch)':<38}{loop_seconds:>10.3f}{loop_qps:>12.1f}",
        f"{'per-query BatchQueryEngine.query':<38}{single_seconds:>10.3f}{single_qps:>12.1f}",
        f"{'batched query_batch (matrix)':<38}{batch_seconds:>10.3f}{batch_qps:>12.1f}",
        f"{'data-parallel, 2 shards (procs)':<38}{sharded_seconds:>10.3f}"
        f"{len(queries) / sharded_seconds:>12.1f}",
        "",
        f"batched speedup over loop: {batch_speedup:.1f}x "
        f"(required >= {MIN_BATCH_SPEEDUP:.0f}x)",
        f"batched vs per-query engine: {batch_vs_single:.2f}x "
        f"(required >= {MIN_BATCH_VS_SINGLE:.1f}x)",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_throughput_batched.txt").write_text(
        rendered + "\n", encoding="utf-8"
    )
    print()
    print(rendered)

    if not SMOKE:
        assert batch_speedup >= MIN_BATCH_SPEEDUP, (
            f"batched QPS {batch_qps:.1f} is only {batch_speedup:.2f}x "
            f"the per-query loop QPS {loop_qps:.1f}"
        )
        assert batch_vs_single >= MIN_BATCH_VS_SINGLE, (
            f"batched QPS {batch_qps:.1f} regressed to {batch_vs_single:.2f}x "
            f"of per-query engine QPS {single_qps:.1f}"
        )


def test_pruned_selective_workload(results_dir):
    """Filter-and-verify pruned execution on a selective workload, per backend.

    The database mixes graph sizes 8..120 while the queries stay small
    (8..12 vertices) with small τ̂ and high γ.  The γ-threshold inversion
    plus the GBD lower bound then eliminates ~96% of the candidates with
    O(1) arithmetic per graph, and only the survivors' postings are read
    through the (key, order)-block index — the unpruned engine scores the
    whole database per query.  Answers must be bit-identical.  The whole
    measurement runs once per available kernel backend (numpy always, the
    compiled native kernels when they build here), each held to its own
    ``MIN_PRUNED_SPEEDUP`` bar.  Also emits the machine-readable
    ``BENCH_serving.json`` (QPS per backend, prune rate, latency
    percentiles) consumed by the CI artifact upload.
    """
    rng = random.Random(5)
    graphs = []
    for _ in range(SELECTIVE_DB_SIZE):
        order = rng.randint(8, SELECTIVE_MAX_ORDER)
        graphs.append(
            random_labeled_graph(order, rng.randint(order - 1, 2 * order), seed=rng)
        )
    database = GraphDatabase(graphs, name=f"Selective-{SELECTIVE_DB_SIZE}")
    search = GBDASearch(database, max_tau=3, num_prior_pairs=300, seed=2).fit()

    qrng = random.Random(6)
    queries = []
    for position in range(SELECTIVE_QUERIES):
        order = qrng.randint(8, 12)
        queries.append(
            SimilarityQuery(
                random_labeled_graph(order, qrng.randint(order - 1, 2 * order), seed=qrng),
                position % 2,  # τ̂ ∈ {0, 1}: tight similarity thresholds
                0.95,
            )
        )

    backends = available_backends()
    primary = "native" if "native" in backends else "numpy"
    results = {}
    for backend in backends:
        pruned = BatchQueryEngine.from_search(
            search, cache_size=None, kernel_backend=backend
        )
        unpruned = BatchQueryEngine.from_search(
            search, cache_size=None, pruned_execution=False, kernel_backend=backend
        )

        # Correctness first: filter-and-verify must be bit-identical (warm pass).
        pruned_answers = [pruned.query(query) for query in queries]
        for query, pruned_answer in zip(queries, pruned_answers):
            unpruned_answer = unpruned.query(query)
            assert pruned_answer.accepted_ids == unpruned_answer.accepted_ids
            assert pruned_answer.scores == unpruned_answer.scores

        # Best-of-3: one pass over this workload is a couple of milliseconds,
        # so a single scheduler hiccup would otherwise dominate the reading.
        counters_before = pruned.prune_counters
        pruned_seconds, _ = _best_of(3, lambda: [pruned.query(q) for q in queries])
        counters_after = pruned.prune_counters
        unpruned_seconds, _ = _best_of(3, lambda: [unpruned.query(q) for q in queries])
        batch_pruned_seconds, _ = _best_of(3, lambda: pruned.query_batch(queries))
        batch_unpruned_seconds, _ = _best_of(3, lambda: unpruned.query_batch(queries))

        generated = (
            counters_after["candidates_generated"] - counters_before["candidates_generated"]
        )
        eliminated = (
            counters_after["candidates_pruned"] - counters_before["candidates_pruned"]
        )
        results[backend] = {
            "engine": pruned,
            "pruned_seconds": pruned_seconds,
            "unpruned_seconds": unpruned_seconds,
            "qps": {
                "pruned": len(queries) / pruned_seconds,
                "unpruned": len(queries) / unpruned_seconds,
                "speedup": unpruned_seconds / pruned_seconds,
                "batch_pruned": len(queries) / batch_pruned_seconds,
                "batch_unpruned": len(queries) / batch_unpruned_seconds,
                "batch_speedup": batch_unpruned_seconds / batch_pruned_seconds,
            },
            "prune": {
                "candidates_generated": generated,
                "candidates_pruned": eliminated,
                "candidates_verified": generated - eliminated,
                "prune_rate": eliminated / generated if generated else 0.0,
            },
        }

    # Latency percentiles (and the prune counters as serving stats) come
    # from one executor pass over the primary backend's pruned engine.
    executor = ServingExecutor(results[primary]["engine"], num_workers=1, mode="serial")
    executor.map(queries)
    stats = executor.last_stats
    primary_result = results[primary]
    prune_rate = primary_result["prune"]["prune_rate"]

    payload = {
        "benchmark": "serving",
        "mode": "smoke" if SMOKE else "full",
        "kernel_backend": primary,
        "selective": {
            "database_size": SELECTIVE_DB_SIZE,
            "num_queries": len(queries),
            "tau_hats": [0, 1],
            "gamma": 0.95,
            "qps": primary_result["qps"],
            "prune": primary_result["prune"],
            "latency_seconds": {
                "mean": stats.mean_latency,
                "p50": stats.p50_latency,
                "p95": stats.p95_latency,
                "p99": stats.p99_latency,
            },
            "backends": {
                backend: {"qps": result["qps"], "prune": result["prune"]}
                for backend, result in results.items()
            },
        },
    }
    (results_dir / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Pruned filter-and-verify on |D|={SELECTIVE_DB_SIZE}, {len(queries)} queries "
        f"(tau in {{0, 1}}, gamma=0.95, query sizes 8..12, db sizes 8..{SELECTIVE_MAX_ORDER})",
        "",
        f"{'engine':<38}{'seconds':>10}{'QPS':>12}",
    ]
    for backend, result in results.items():
        qps = result["qps"]
        lines += [
            f"{f'unpruned full scan [{backend}]':<38}"
            f"{result['unpruned_seconds']:>10.3f}{qps['unpruned']:>12.1f}",
            f"{f'pruned filter-and-verify [{backend}]':<38}"
            f"{result['pruned_seconds']:>10.3f}{qps['pruned']:>12.1f}",
        ]
    lines += [""]
    for backend, result in results.items():
        qps = result["qps"]
        lines.append(
            f"[{backend}] pruned speedup: {qps['speedup']:.1f}x "
            f"(required >= {MIN_PRUNED_SPEEDUP[backend]:.1f}x), "
            f"batched: {qps['batch_speedup']:.1f}x, "
            f"batch pruned {qps['batch_pruned']:.1f} QPS"
        )
    prune = primary_result["prune"]
    lines += [
        f"prune rate: {prune_rate:.1%} "
        f"({prune['candidates_pruned']} of {prune['candidates_generated']} "
        f"candidates eliminated by bound arithmetic)",
        f"latency p50/p95/p99 [{primary}]: {stats.p50_latency * 1e3:.2f} / "
        f"{stats.p95_latency * 1e3:.2f} / {stats.p99_latency * 1e3:.2f} ms",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_selective.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    assert prune_rate > 0.5, "the selective workload should prune most candidates"
    if not SMOKE:
        for backend, result in results.items():
            speedup = result["qps"]["speedup"]
            assert speedup >= MIN_PRUNED_SPEEDUP[backend], (
                f"[{backend}] pruned QPS {result['qps']['pruned']:.1f} is only "
                f"{speedup:.2f}x the unpruned engine QPS {result['qps']['unpruned']:.1f}"
            )
