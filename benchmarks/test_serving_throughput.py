"""Serving-engine throughput: batched/vectorized vs. per-query loop.

Builds a 2000-graph synthetic database, fits the GBDA offline stage once,
and answers the same query stream two ways:

* the faithful per-query loop of :meth:`GBDASearch.query` (Algorithm 1,
  one posterior evaluation per database graph), and
* the :class:`~repro.serving.engine.BatchQueryEngine`, which computes all
  GBDs with one inverted-index pass per query and maps them to posteriors
  through pre-computed ``(τ̂, |V'1|)`` lookup tables.

The answers must be identical and the engine must deliver at least 3× the
loop's QPS (it typically lands near an order of magnitude); a cache-warm
pass over a repeated stream is reported as well.  The rendered table is
written to ``results/serving_throughput.txt``.
"""

from __future__ import annotations

import random
import time

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, ServingExecutor

DATABASE_SIZE = 2000
NUM_QUERIES = 30
MIN_SPEEDUP = 3.0


def _build_database(seed: int = 0) -> GraphDatabase:
    rng = random.Random(seed)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    return GraphDatabase(graphs, name=f"Syn-{DATABASE_SIZE}")


def _build_queries(seed: int = 1):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng),
            rng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]


def test_engine_throughput_beats_query_loop(results_dir):
    database = _build_database()
    search = GBDASearch(database, max_tau=3, num_prior_pairs=400, seed=1).fit()
    queries = _build_queries()

    # Per-query loop (Algorithm 1 as written); best of two passes so a
    # scheduler hiccup on a noisy CI runner cannot skew the baseline.
    loop_runs = []
    loop_answers = None
    for _ in range(2):
        start = time.perf_counter()
        loop_answers = [search.query(query).answer for query in queries]
        loop_runs.append(time.perf_counter() - start)
    loop_seconds = min(loop_runs)
    loop_qps = len(queries) / loop_seconds

    # Batched engine without a result cache so every pass really scores the
    # database.  Pass 1 is cold (lazy posterior tables built inside the
    # measured window); pass 2 is the steady state of a running server.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    start = time.perf_counter()
    engine_answers = engine.query_batch(queries)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine.query_batch(queries)
    warm_seconds = time.perf_counter() - start
    engine_seconds = min(cold_seconds, warm_seconds)
    engine_qps = len(queries) / engine_seconds

    # Correctness first: the vectorized path must reproduce the loop exactly.
    for loop_answer, engine_answer in zip(loop_answers, engine_answers):
        assert engine_answer.accepted_ids == loop_answer.accepted_ids

    # Hot pass through the executor on a cache-backed engine: a repeated
    # stream is answered from the LRU.
    cached_engine = BatchQueryEngine.from_search(search)
    executor = ServingExecutor(cached_engine, num_workers=4, mode="thread")
    executor.map(queries)
    executor.map(queries)
    hot_stats = executor.last_stats

    speedup = engine_qps / loop_qps
    lines = [
        f"Serving throughput on |D|={DATABASE_SIZE}, {len(queries)} queries "
        f"(tau in 1..3, gamma=0.5)",
        "",
        f"{'method':<34}{'seconds':>10}{'QPS':>12}",
        f"{'per-query loop (GBDASearch)':<34}{loop_seconds:>10.3f}{loop_qps:>12.1f}",
        f"{'BatchQueryEngine (cold tables)':<34}{cold_seconds:>10.3f}"
        f"{len(queries) / cold_seconds:>12.1f}",
        f"{'BatchQueryEngine (warm tables)':<34}{warm_seconds:>10.3f}"
        f"{len(queries) / warm_seconds:>12.1f}",
        f"{'ServingExecutor (LRU-hot)':<34}{hot_stats.elapsed_seconds:>10.3f}"
        f"{hot_stats.queries_per_second:>12.1f}",
        "",
        f"engine speedup over loop: {speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
        f"hot-pass cache hit rate: {hot_stats.cache_hit_rate:.0%}",
        f"posterior tables materialised: {engine.num_cached_tables}",
    ]
    rendered = "\n".join(lines)
    (results_dir / "serving_throughput.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    assert speedup >= MIN_SPEEDUP, (
        f"engine QPS {engine_qps:.1f} is only {speedup:.2f}x the loop QPS {loop_qps:.1f}"
    )
