"""E-F8/F9 — Figures 8 & 9: query time versus graph size on Syn-1 and Syn-2."""

import pytest

from repro.core.search import GBDASearch
from repro.datasets import make_syn1
from repro.db.database import GraphDatabase
from repro.experiments import run_figure8_9_time_synthetic


@pytest.mark.parametrize("scale_free", [True, False], ids=["fig8_syn1", "fig9_syn2"])
def test_fig8_9_query_time_vs_graph_size(benchmark, scale, save_output, scale_free):
    """Regenerate Figure 8 (Syn-1) / Figure 9 (Syn-2) and check the scaling shape."""
    output = run_figure8_9_time_synthetic(
        scale, scale_free=scale_free, tau_values=(10, 20, 30), family_size=4
    )
    save_output(output)

    sizes = output.data["sizes"]
    series = output.data["series"]

    # Headline shape: the competitors' time grows much faster with n than
    # GBDA's, so at the largest size GBDA (τ̂ = 10) is the fastest method and
    # its growth factor is smaller than LSAP's.
    gbda = series["GBDA(τ̂=10)"]
    lsap = series["LSAP"]
    assert gbda[-1] < lsap[-1]
    gbda_growth = gbda[-1] / max(gbda[0], 1e-9)
    lsap_growth = lsap[-1] / max(lsap[0], 1e-9)
    assert gbda_growth < lsap_growth * 1.5, (
        "GBDA's online time must scale more gently with n than the cubic LSAP baseline"
    )

    # Benchmark kernel: one GBDA query on the largest synthetic size.
    dataset = make_syn1(
        sizes=(max(sizes),), families_per_size=1, family_size=4, max_distance=10, seed=scale.seed
    )
    database = GraphDatabase(dataset.database_graphs)
    search = GBDASearch(database, max_tau=10, num_prior_pairs=20, seed=scale.seed).fit()
    query = dataset.query_graphs[0]
    benchmark(lambda: search.search(query, tau_hat=10, gamma=0.9))
