"""Offline-stage speed: vectorized (numpy) vs scalar (python) EM fit.

Table IV of the paper prices the offline stage by its pair-GBD sampling and
GMM fit.  This benchmark draws 10 000 pair GBDs from a synthetic database
(the paper's ``N = 10k`` regime, scaled to CI budgets), fits the GBD prior
with both EM backends, and asserts that

* the vectorized fit is at least 3x faster than the scalar path,
* both backends produce the same mixture (within 1e-9), and
* a :class:`GBDASearch` fitted with either backend returns identical
  (bit-stable, per fixed seed) query answers.

Setting ``REPRO_SMOKE=1`` (the CI smoke job) shrinks the sample count to
2 000 and relaxes the speedup floor, keeping the run under a few seconds.
The rendered table is written to ``results/offline_fit.txt``.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core.gbd_prior import GBDPrior
from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.offline.parallel import compute_pair_gbds
from repro.stats.sampling import sample_pairs

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
NUM_SAMPLES = 2_000 if SMOKE else 10_000
MIN_SPEEDUP = 1.5 if SMOKE else 3.0
DATABASE_SIZE = 150
NUM_QUERIES = 8


def _build_graphs(seed: int = 0):
    rng = random.Random(seed)
    return [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]


def _fit_seconds(backend: str, samples, max_value: int) -> tuple:
    """Best-of-two wall-clock of one backend's GMM fit (plus the prior)."""
    runs = []
    prior = None
    for _ in range(2):
        prior = GBDPrior(num_components=3, seed=7, backend=backend)
        start = time.perf_counter()
        prior.fit_from_samples(samples, max_value=max_value)
        runs.append(time.perf_counter() - start)
    return min(runs), prior


def test_vectorized_offline_fit_speedup(results_dir):
    graphs = _build_graphs()

    # Step 1.2 of the offline stage: N pair GBDs (with replacement so the
    # sample count is independent of |D|).
    start = time.perf_counter()
    pairs = sample_pairs(list(range(len(graphs))), NUM_SAMPLES, seed=11, distinct=False)
    samples = compute_pair_gbds(graphs, pairs)
    sampling_seconds = time.perf_counter() - start
    assert len(samples) == NUM_SAMPLES
    max_value = max(graph.num_vertices for graph in graphs)

    scalar_seconds, scalar_prior = _fit_seconds("python", samples, max_value)
    numpy_seconds, numpy_prior = _fit_seconds("numpy", samples, max_value)
    speedup = scalar_seconds / numpy_seconds

    # Backend parity: the same mixture within 1e-9 (same seeding, same
    # convergence semantics, array arithmetic only differs in round-off).
    scalar_components = scalar_prior.mixture.components
    numpy_components = numpy_prior.mixture.components
    assert len(scalar_components) == len(numpy_components)
    for a, b in zip(scalar_components, numpy_components):
        assert abs(a.weight - b.weight) < 1e-9
        assert abs(a.mean - b.mean) < 1e-9
        assert abs(a.std - b.std) < 1e-9

    # Bit-stable query answers for a fixed seed: the backend refactor must
    # not move a single graph across the accept threshold.
    database = GraphDatabase(graphs[:60], name="offline-bench")
    queries = [
        SimilarityQuery(database[i].graph, 1 + (i % 3), 0.5)
        for i in range(NUM_QUERIES)
    ]
    scalar_search = GBDASearch(
        database, max_tau=3, num_prior_pairs=300, seed=4, backend="python"
    ).fit()
    numpy_search = GBDASearch(
        database, max_tau=3, num_prior_pairs=300, seed=4, backend="numpy"
    ).fit()
    for query in queries:
        scalar_answer = scalar_search.query(query).answer
        numpy_answer = numpy_search.query(query).answer
        assert numpy_answer.accepted_ids == scalar_answer.accepted_ids

    mode = "smoke" if SMOKE else "full"
    lines = [
        f"Offline fit on N={NUM_SAMPLES} pair-GBD samples ({mode} mode, K=3)",
        "",
        f"{'stage':<38}{'seconds':>10}",
        f"{'pair-GBD sampling (shared cache)':<38}{sampling_seconds:>10.3f}",
        f"{'GMM fit, scalar EM (python)':<38}{scalar_seconds:>10.3f}",
        f"{'GMM fit, vectorized EM (numpy)':<38}{numpy_seconds:>10.3f}",
        "",
        f"vectorized speedup over scalar: {speedup:.1f}x (required >= {MIN_SPEEDUP:.1f}x)",
        f"EM iterations: scalar={scalar_prior.mixture.n_iterations_} "
        f"numpy={numpy_prior.mixture.n_iterations_}",
        f"query answers: identical accepted sets across backends "
        f"({NUM_QUERIES} queries, |D|={len(database)})",
    ]
    rendered = "\n".join(lines)
    (results_dir / "offline_fit.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    # Machine-readable record for the CI artifact upload / perf trajectory.
    payload = {
        "benchmark": "offline",
        "mode": mode,
        "num_samples": NUM_SAMPLES,
        "seconds": {
            "pair_gbd_sampling": sampling_seconds,
            "gmm_fit_scalar": scalar_seconds,
            "gmm_fit_numpy": numpy_seconds,
        },
        "samples_per_second": {
            "scalar": NUM_SAMPLES / scalar_seconds,
            "numpy": NUM_SAMPLES / numpy_seconds,
            "sampling": NUM_SAMPLES / sampling_seconds,
        },
        "vectorized_speedup": speedup,
        "em_iterations": {
            "scalar": scalar_prior.mixture.n_iterations_,
            "numpy": numpy_prior.mixture.n_iterations_,
        },
    }
    (results_dir / "BENCH_offline.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized fit is only {speedup:.2f}x the scalar path "
        f"(scalar {scalar_seconds:.3f}s, numpy {numpy_seconds:.3f}s)"
    )
