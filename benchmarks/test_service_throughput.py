"""Service-layer throughput: micro-batched concurrency vs a serial client.

Starts a real :class:`~repro.service.server.SimilarityService` (asyncio TCP,
length-prefixed JSON protocol) over a fitted engine and drives it two ways:

* **serial** — one connection, one query at a time: every request pays the
  full round-trip and scores as a batch of one;
* **concurrent** — N client threads with pipelined requests: the server's
  :class:`~repro.service.batcher.MicroBatcher` coalesces the in-flight
  queries into single ``query_batch`` calls, which is exactly how the
  engine's batched-execution speedup becomes concurrent serving throughput.

Assertions: answers received over the wire are bit-identical to direct
engine calls on every path, and (full mode) coalesced concurrent QPS clears
``MIN_CONCURRENT_SPEEDUP``x the serial single-connection QPS.  The run
emits the machine-readable ``results/BENCH_service.json`` (QPS, speedup,
batch occupancy, latency percentiles) uploaded by CI next to the other
BENCH files; ``REPRO_SMOKE=1`` shrinks the workload and keeps only the
parity assertions.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine
from repro.service import ServiceClient, start_service_thread

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

DATABASE_SIZE = 300 if SMOKE else 2000
NUM_QUERIES = 48 if SMOKE else 240          # total queries per measured pass
NUM_CLIENTS = 8                              # concurrent connections
MIN_CONCURRENT_SPEEDUP = 2.0                 # coalesced concurrent vs serial QPS


@pytest.fixture(scope="module")
def service_workload():
    """Fitted engine + distinct query stream, shared by the benchmark cases."""
    rng = random.Random(11)
    graphs = [
        random_labeled_graph(rng.randint(8, 12), rng.randint(9, 18), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    database = GraphDatabase(graphs, name=f"Service-{DATABASE_SIZE}")
    search = GBDASearch(database, max_tau=3, num_prior_pairs=400, seed=3).fit()
    qrng = random.Random(13)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(8, 12), qrng.randint(9, 18), seed=qrng),
            qrng.randint(1, 3),
            0.5,
        )
        for _ in range(NUM_QUERIES)
    ]
    # No result cache: every served query must really score the database,
    # otherwise the serial pass would be answered from the LRU.
    engine = BatchQueryEngine.from_search(search, cache_size=None)
    return engine, queries


def test_micro_batched_concurrency_beats_serial_connection(service_workload, results_dir):
    engine, queries = service_workload
    direct = [engine.query(query) for query in queries]  # also warms the tables

    handle = start_service_thread(engine, max_batch=64, max_delay_ms=2.0)
    try:
        # --- serial: one connection, strict request/response lockstep ----- #
        with ServiceClient(*handle.address, timeout=120.0) as client:
            serial_answers = [client.query(query) for query in queries]  # warm pass
            start = time.perf_counter()
            serial_answers = [client.query(query) for query in queries]
            serial_seconds = time.perf_counter() - start
        serial_qps = len(queries) / serial_seconds

        for received, expected in zip(serial_answers, direct):
            assert received.accepted_ids == expected.accepted_ids
            assert received.scores == expected.scores

        batches_before = handle.service.batcher.batches_flushed
        queries_before = handle.service.batcher.queries_batched

        # --- concurrent: N clients, pipelined, coalesced by the server ---- #
        shards = [queries[worker::NUM_CLIENTS] for worker in range(NUM_CLIENTS)]
        expected_shards = [direct[worker::NUM_CLIENTS] for worker in range(NUM_CLIENTS)]
        failures = []
        barrier = threading.Barrier(NUM_CLIENTS + 1)

        def run_client(worker: int) -> None:
            try:
                with ServiceClient(*handle.address, timeout=120.0) as client:
                    barrier.wait()
                    answers = client.query_many(shards[worker])
                    for received, expected in zip(answers, expected_shards[worker]):
                        assert received.accepted_ids == expected.accepted_ids
                        assert received.scores == expected.scores
            except Exception as exc:
                failures.append((worker, exc))

        threads = [
            threading.Thread(target=run_client, args=(worker,))
            for worker in range(NUM_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=600)
        concurrent_seconds = time.perf_counter() - start
        assert not failures, failures
        concurrent_qps = len(queries) / concurrent_seconds

        batches = handle.service.batcher.batches_flushed - batches_before
        batched_queries = handle.service.batcher.queries_batched - queries_before
        mean_batch = batched_queries / batches if batches else 0.0
        metrics = handle.service.metrics()
    finally:
        handle.stop()

    speedup = concurrent_qps / serial_qps
    payload = {
        "benchmark": "service",
        "mode": "smoke" if SMOKE else "full",
        "database_size": DATABASE_SIZE,
        "num_queries": len(queries),
        "num_clients": NUM_CLIENTS,
        "qps": {
            "serial_single_connection": serial_qps,
            "concurrent_micro_batched": concurrent_qps,
            "speedup": speedup,
        },
        "batcher": {
            "batches_flushed": batches,
            "mean_batch_size": mean_batch,
            "largest_batch": metrics["batcher"]["largest_batch"],
        },
        "latency_seconds": {
            "mean": metrics["serving"]["mean_latency"],
            "p50": metrics["serving"]["p50_latency"],
            "p95": metrics["serving"]["p95_latency"],
            "p99": metrics["serving"]["p99_latency"],
        },
        "admission": {
            "admitted": metrics["admission"]["admitted"],
            "rejected": metrics["admission"]["rejected"],
        },
    }
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Service throughput on |D|={DATABASE_SIZE}, {len(queries)} queries "
        f"(tau in 1..3, gamma=0.5), {NUM_CLIENTS} concurrent clients",
        "",
        f"{'path':<42}{'seconds':>10}{'QPS':>12}",
        f"{'serial single connection':<42}{serial_seconds:>10.3f}{serial_qps:>12.1f}",
        f"{'concurrent micro-batched':<42}{concurrent_seconds:>10.3f}{concurrent_qps:>12.1f}",
        "",
        f"concurrent speedup: {speedup:.1f}x (required >= {MIN_CONCURRENT_SPEEDUP:.0f}x)",
        f"coalescing: {batches} batches, mean size {mean_batch:.1f}, "
        f"largest {metrics['batcher']['largest_batch']}",
        f"latency p50/p95/p99: {metrics['serving']['p50_latency'] * 1e3:.2f} / "
        f"{metrics['serving']['p95_latency'] * 1e3:.2f} / "
        f"{metrics['serving']['p99_latency'] * 1e3:.2f} ms",
    ]
    rendered = "\n".join(lines)
    (results_dir / "service_throughput.txt").write_text(rendered + "\n", encoding="utf-8")
    print()
    print(rendered)

    assert mean_batch > 1.0, "concurrent clients should have been coalesced"
    if not SMOKE:
        assert speedup >= MIN_CONCURRENT_SPEEDUP, (
            f"concurrent QPS {concurrent_qps:.1f} is only {speedup:.2f}x "
            f"the serial single-connection QPS {serial_qps:.1f}"
        )
