"""E-T5 — Table V: offline cost of the GED (Jeffreys) prior."""

from repro.core.ged_prior import GEDPrior
from repro.db.database import GraphDatabase
from repro.experiments import run_table5_ged_prior_costs


def test_table5_ged_prior_costs(benchmark, all_datasets, scale, save_output):
    """Regenerate Table V and benchmark one Jeffreys-prior pre-computation."""
    output = run_table5_ged_prior_costs(scale, datasets=all_datasets, max_tau=10)
    save_output(output)

    data = output.data
    # Shape check mirroring the paper's observation: the synthetic datasets
    # have far fewer distinct vertex counts than the real ones, so their GED
    # prior is cheaper to tabulate despite the larger graphs.
    real_orders = data["AIDS"]["orders"]
    synthetic_orders = data["Syn-1"]["orders"]
    assert synthetic_orders <= real_orders
    assert all(entry["seconds"] >= 0.0 for entry in data.values())

    fingerprint = next(d for d in all_datasets if d.name == "Fingerprint")
    database = GraphDatabase(fingerprint.database_graphs)
    orders = sorted({graph.num_vertices for graph in fingerprint.database_graphs})

    def kernel():
        return GEDPrior(
            max_tau=10,
            num_vertex_labels=database.num_vertex_labels,
            num_edge_labels=database.num_edge_labels,
        ).fit(orders)

    benchmark(kernel)
