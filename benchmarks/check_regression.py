#!/usr/bin/env python
"""Compare fresh BENCH_*.json results against the committed baselines.

CI runs the benchmark suite (usually under ``REPRO_SMOKE=1``), which
rewrites ``results/BENCH_*.json`` in place.  This checker then diffs every
throughput-style figure in the fresh documents against the version
committed at ``HEAD`` (read via ``git show`` — the working tree already
holds the fresh copy) and fails the build when one regressed beyond the
tolerance.

What is compared
----------------
Numeric leaves are extracted recursively; a leaf counts as a throughput
figure — *higher is better* — when any component of its key path mentions
``qps``, ``speedup``, ``samples_per_second`` or ``ratio``.  Everything
else (sizes, counts, latencies, noise estimates) is configuration or
context, not a pass/fail signal.

When comparison is skipped
--------------------------
* **Mode mismatch** — a smoke-mode run is not comparable to a committed
  full-mode baseline (different workload sizes); the pair is reported and
  skipped rather than producing a bogus verdict.
* **Missing baseline** — a benchmark new in this change has nothing to
  regress against.
* **Missing/extra metrics** — schema drift is reported, not failed; the
  numeric check covers only the intersection.

Usage::

    python benchmarks/check_regression.py [--tolerance 0.80] [--results DIR]

Exit status is non-zero only for a *real* regression: same mode on both
sides and a ratio below tolerance.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Key-path fragments that mark a numeric leaf as higher-is-better.
THROUGHPUT_MARKERS = ("qps", "speedup", "samples_per_second", "ratio")

#: Fraction of the baseline a figure may drop to before it counts as a
#: regression.  Benchmarks are noisy — especially smoke runs on shared CI
#: runners — so the default is deliberately loose; it catches "the fast
#: path stopped being fast", not single-digit jitter.
DEFAULT_TOLERANCE = 0.80


def _walk_numeric(doc: Any, path: Tuple[str, ...] = ()) -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf in ``doc``."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            yield from _walk_numeric(value, path + (str(key),))
    elif isinstance(doc, list):
        for index, value in enumerate(doc):
            yield from _walk_numeric(value, path + (str(index),))
    elif isinstance(doc, bool):
        return
    elif isinstance(doc, (int, float)):
        yield ".".join(path), float(doc)


def extract_throughput(doc: Any) -> Dict[str, float]:
    """The higher-is-better figures of one BENCH document, keyed by path."""
    figures = {}
    for path, value in _walk_numeric(doc):
        components = path.lower().split(".")
        if any(
            marker in component
            for component in components
            for marker in THROUGHPUT_MARKERS
        ):
            # Per-attempt sub-records repeat the headline figures with
            # noisier values; compare the headline only.
            if "attempts" in components:
                continue
            figures[path] = value
    return figures


def run_mode(doc: Any) -> str:
    """The workload mode a BENCH document was produced under."""
    if isinstance(doc, dict):
        if isinstance(doc.get("mode"), str):
            return doc["mode"]
        if "smoke" in doc:
            return "smoke" if doc["smoke"] else "full"
    return "unknown"


def baseline_document(relative: str) -> Optional[Any]:
    """The committed version of ``results/<name>``, or None if unreadable."""
    try:
        completed = subprocess.run(
            ["git", "show", f"HEAD:{relative}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(completed.stdout)
    except (subprocess.CalledProcessError, OSError, json.JSONDecodeError):
        return None


def compare_document(
    name: str, fresh: Any, baseline: Optional[Any], tolerance: float
) -> Tuple[List[str], bool]:
    """Report lines for one benchmark; second element flags a regression."""
    lines: List[str] = []
    if baseline is None:
        lines.append(f"{name}: no committed baseline — skipped (new benchmark?)")
        return lines, False
    fresh_mode, base_mode = run_mode(fresh), run_mode(baseline)
    if fresh_mode != base_mode:
        lines.append(
            f"{name}: mode mismatch (fresh={fresh_mode}, baseline={base_mode})"
            " — numeric comparison skipped"
        )
        return lines, False

    fresh_figures = extract_throughput(fresh)
    base_figures = extract_throughput(baseline)
    regressed = False
    for path in sorted(set(fresh_figures) | set(base_figures)):
        if path not in base_figures:
            lines.append(f"{name}: {path} is new ({fresh_figures[path]:.4g})")
            continue
        if path not in fresh_figures:
            lines.append(f"{name}: {path} disappeared (was {base_figures[path]:.4g})")
            continue
        base, current = base_figures[path], fresh_figures[path]
        if base <= 0.0:
            continue  # a zero/negative baseline cannot be regressed against
        ratio = current / base
        status = "ok"
        if ratio < tolerance:
            status = "REGRESSED"
            regressed = True
        lines.append(
            f"{name}: {path}: {base:.4g} -> {current:.4g} "
            f"(x{ratio:.3f}, floor x{tolerance:.2f}) {status}"
        )
    if not fresh_figures and not base_figures:
        lines.append(f"{name}: no throughput figures on either side")
    return lines, regressed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="minimum current/baseline ratio before a figure counts as "
        f"regressed (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=REPO_ROOT / "results",
        help="directory holding the freshly written BENCH_*.json files",
    )
    options = parser.parse_args(argv)
    if not 0.0 < options.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")

    fresh_paths = sorted(options.results.glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"no BENCH_*.json files under {options.results} — nothing to check")
        return 0

    any_regressed = False
    for path in fresh_paths:
        try:
            fresh = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path.name}: unreadable fresh result ({exc}) — skipped")
            continue
        baseline = baseline_document(f"results/{path.name}")
        lines, regressed = compare_document(
            path.name, fresh, baseline, options.tolerance
        )
        any_regressed |= regressed
        for line in lines:
            print(line)

    if any_regressed:
        print("\nbenchmark regression detected (see REGRESSED lines above)")
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
