"""E-F5 — Figure 5: sampled vs inferred GBD prior on the Fingerprint dataset."""

from repro.experiments import run_figure5_gbd_prior_fit


def test_fig5_gbd_prior_fit(benchmark, real_datasets, scale, save_output):
    """Regenerate Figure 5 and benchmark the driver."""
    fingerprint = next(d for d in real_datasets if d.name == "Fingerprint")
    output = benchmark.pedantic(
        lambda: run_figure5_gbd_prior_fit(scale, dataset=fingerprint), rounds=1, iterations=1
    )
    save_output(output)

    sampled = output.data["sampled"]
    inferred = output.data["inferred"]
    assert len(sampled) == len(inferred)
    # The inferred mixture must track the sampled histogram: its mode should
    # fall within one unit of the empirical mode (the paper's Figure 5 shows
    # the red curve following the blue histogram).
    empirical_mode = sampled.index(max(sampled))
    inferred_mode = inferred.index(max(inferred))
    assert abs(empirical_mode - inferred_mode) <= 2
    # And it integrates to (almost) one over the plotted range.
    assert 0.5 <= sum(inferred) <= 1.05
