"""Per-kernel A/B microbenchmark: numpy vs native, fused vs unfused.

Times each CSR kernel of the columnar branch store under every available
backend on one identical store + query stream, and prices the headline
fusion win — the single-pass ``filter_verify_row`` against the unfused
pipeline it replaced (dense GBD lower-bound row → γ-threshold compare →
postings gather for the survivors).

Asserts only *correctness* (both backends bit-identical per kernel); the
timing ratios are recorded in ``results/BENCH_kernels.json`` for the
serving-level acceptance bar rather than asserted here, because per-call
microbenchmark noise on a shared box easily exceeds the effect size.
``REPRO_SMOKE=1`` shrinks the store for CI.
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np
import pytest

from repro.core.branches import branch_multiset
from repro.db.columnar import ColumnarBranchStore
from repro.db.database import GraphDatabase
from repro.db.kernels import available_backends, native_load_error
from repro.graphs.generators import random_labeled_graph

SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

DATABASE_SIZE = 300 if SMOKE else 4_000
MAX_ORDER = 40 if SMOKE else 80
NUM_QUERIES = 8 if SMOKE else 16
NUM_ROUNDS = 3 if SMOKE else 5                # best-of rounds per (kernel, backend)
TAU = 2                                       # GBD bar for the filter kernels

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(11)
    graphs = [
        random_labeled_graph(rng.randint(8, MAX_ORDER), rng.randint(10, MAX_ORDER + 20), seed=rng)
        for _ in range(DATABASE_SIZE)
    ]
    database = GraphDatabase(graphs, name=f"Kernels-{DATABASE_SIZE}")
    stores = {}
    for backend in BACKENDS:
        store = ColumnarBranchStore(database, backend=backend)
        store.compact()
        stores[backend] = store
    qrng = random.Random(13)
    queries = [
        random_labeled_graph(qrng.randint(8, 14), qrng.randint(10, 20), seed=qrng)
        for _ in range(NUM_QUERIES)
    ]
    branch_sets = [branch_multiset(query) for query in queries]
    vertices = [query.num_vertices for query in queries]
    return stores, vertices, branch_sets


def _per_call_us(fn, calls: int) -> float:
    """Best-of-NUM_ROUNDS wall time of ``fn`` in microseconds per call."""
    best = min(_timed(fn) for _ in range(NUM_ROUNDS))
    return best / calls * 1e6


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _unfused_filter_verify(store, num_query_vertices, branches, distinct, tau):
    """The pre-fusion pipeline: dense bound row → compare → gather survivors."""
    bounds = store.gbd_lower_bound_row(num_query_vertices, branches)
    positions = np.flatnonzero(bounds <= tau)
    order_bounds = np.maximum(num_query_vertices, distinct) - np.minimum(
        store.matched_query_total(branches), distinct
    )
    eligible = order_bounds <= tau
    return positions, store.intersection_for_orders(branches, distinct[eligible], positions)


def test_kernel_backend_microbench(workload, results_dir):
    stores, vertices, branch_sets = workload
    reference = stores["numpy"]
    distinct = np.unique(reference.orders())
    bars = np.full(len(distinct), TAU, dtype=np.int64)
    bars_matrix = np.full((len(branch_sets), len(distinct)), TAU, dtype=np.int64)
    num_rows = reference.num_graphs

    def ops(store):
        return {
            "intersection_row": lambda: [
                store.intersection_row(branches) for branches in branch_sets
            ],
            "gbd_lower_bound_row": lambda: [
                store.gbd_lower_bound_row(nq, branches)
                for nq, branches in zip(vertices, branch_sets)
            ],
            "intersection_matrix": lambda: store.intersection_matrix(branch_sets),
            "gbd_lower_bound_matrix": lambda: store.gbd_lower_bound_matrix(
                vertices, branch_sets
            ),
            "filter_verify_row": lambda: [
                store.filter_verify_row(nq, branches, bars, num_rows)
                for nq, branches in zip(vertices, branch_sets)
            ],
            "filter_verify_matrix": lambda: store.filter_verify_matrix(
                vertices, branch_sets, bars_matrix, num_rows
            ),
            "unfused_filter_verify": lambda: [
                _unfused_filter_verify(store, nq, branches, distinct, TAU)
                for nq, branches in zip(vertices, branch_sets)
            ],
        }

    # correctness first: every backend must agree with the numpy reference
    for backend, store in stores.items():
        if backend == "numpy":
            continue
        for nq, branches in zip(vertices, branch_sets):
            assert (
                store.intersection_row(branches).tolist()
                == reference.intersection_row(branches).tolist()
            )
            mine = store.filter_verify_row(nq, branches, bars, num_rows)
            theirs = reference.filter_verify_row(nq, branches, bars, num_rows)
            assert mine[0].tolist() == theirs[0].tolist()
            assert mine[1].tolist() == theirs[1].tolist()
            assert mine[2].tolist() == theirs[2].tolist()

    per_call = {name: 1 for name in ops(reference)}
    for name in ("intersection_row", "gbd_lower_bound_row", "filter_verify_row",
                 "unfused_filter_verify"):
        per_call[name] = len(branch_sets)

    kernels = {}
    for name in ops(reference):
        kernels[name] = {}
        for backend, store in stores.items():
            fn = ops(store)[name]
            fn()  # warm caches (order partition, composite keys, key match)
            kernels[name][backend] = _per_call_us(fn, per_call[name])

    record = {
        "benchmark": "kernel_backends",
        "mode": "smoke" if SMOKE else "full",
        "database_size": DATABASE_SIZE,
        "num_queries": len(branch_sets),
        "rounds": NUM_ROUNDS,
        "tau": TAU,
        "backends": list(BACKENDS),
        "native_load_error": native_load_error(),
        "kernels_us_per_call": kernels,
        "speedups": {
            "native_vs_numpy": {
                name: timings["numpy"] / timings["native"]
                for name, timings in kernels.items()
                if "native" in timings
            },
            "fused_vs_unfused": {
                backend: kernels["unfused_filter_verify"][backend]
                / kernels["filter_verify_row"][backend]
                for backend in BACKENDS
            },
        },
    }
    path = results_dir / "BENCH_kernels.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print()
    for name, timings in kernels.items():
        line = ", ".join(f"{backend} {us:8.1f}us" for backend, us in timings.items())
        print(f"{name:>24}: {line}")
    for label, ratios in record["speedups"].items():
        rendered = ", ".join(f"{key} {value:.2f}x" for key, value in ratios.items())
        print(f"{label}: {rendered}")
