"""E-A — design-choice ablations: branch-index pruning and Λ1 caching."""

from repro.experiments import run_design_ablations


def test_design_ablations(benchmark, real_datasets, scale, save_output):
    """Measure the two implementation ablations called out in DESIGN.md."""
    fingerprint = next(d for d in real_datasets if d.name == "Fingerprint")
    output = benchmark.pedantic(
        lambda: run_design_ablations(fingerprint, scale, tau_hat=5, gamma=0.8),
        rounds=1,
        iterations=1,
    )
    save_output(output)

    data = output.data
    # Pruning must never change the answers (it only removes graphs whose GBD
    # already certifies GED > τ̂).
    assert data["answers_identical"]
    # Caching the Λ1 model across database graphs must not be slower than
    # rebuilding it for every graph.
    assert data["cached_seconds"] <= data["uncached_seconds"] * 1.5
    assert data["plain_time"] > 0.0 and data["pruned_time"] > 0.0
