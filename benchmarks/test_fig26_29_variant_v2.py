"""E-F26..29 — Figures 26–29: F1 of GBDA versus GBDA-V2 (w ∈ {0.1, 0.5})."""


def test_fig26_29_gbda_vs_v2(benchmark, variant_results, save_output):
    """Check the GBDA-vs-V2 comparison produced by the shared variant sweep."""
    rendered = []
    for name, output in variant_results.items():
        rendered.append(output.rendered)
        series = output.data["series"]
        tau_values = output.data["tau_values"]

        v2_labels = [label for label in series if label.startswith("V2")]
        assert v2_labels, "the sweep must include GBDA-V2 configurations"
        for label in v2_labels:
            assert len(series[label]) == len(tau_values)
            assert all(0.0 <= value <= 1.0 for value in series[label])

        # Paper shape: averaged over the threshold sweep, GBDA (the unweighted
        # GBD) performs at least as well as the distorted VGBD variants.
        gbda_mean = sum(series["GBDA"]) / len(series["GBDA"])
        for label in v2_labels:
            v2_mean = sum(series[label]) / len(series[label])
            assert gbda_mean >= v2_mean - 0.15, (name, label, gbda_mean, v2_mean)

    joined = "\n\n".join(rendered)

    class _Output:
        name = "fig26_29_variant_v2"
        rendered = joined
        data = {}

    save_output(_Output())
    benchmark(lambda: sum(len(o.data["series"]) for o in variant_results.values()))
