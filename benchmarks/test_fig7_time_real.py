"""E-F7 — Figure 7: average query time on the real datasets, GBDA vs competitors."""

from repro.db.database import GraphDatabase
from repro.core.search import GBDASearch
from repro.experiments import run_figure7_time_real


def test_fig7_query_time_on_real_datasets(benchmark, real_datasets, scale, save_output):
    """Regenerate Figure 7 and benchmark a single GBDA online query."""
    output = run_figure7_time_real(scale, datasets=real_datasets, gbda_tau_values=(1, 5, 10))
    save_output(output)

    series = output.data["series"]
    dataset_names = output.data["datasets"]
    assert len(dataset_names) == len(real_datasets)

    # Headline shape: GBDA answers queries faster than LSAP and Seriation on
    # every real dataset (the paper's Figure 7 finding).
    for position in range(len(dataset_names)):
        gbda_best = min(series[f"GBDA(τ̂={tau})"][position] for tau in (1, 5, 10))
        assert gbda_best < series["LSAP"][position]
        assert gbda_best < series["Seriation"][position]

    # Benchmark kernel: one online GBDA query on the Fingerprint look-alike.
    fingerprint = next(d for d in real_datasets if d.name == "Fingerprint")
    database = GraphDatabase(fingerprint.database_graphs, name="Fingerprint")
    search = GBDASearch(
        database, max_tau=10, num_prior_pairs=scale.prior_pairs, seed=scale.seed
    ).fit()
    query = fingerprint.query_graphs[0]
    benchmark(lambda: search.search(query, tau_hat=5, gamma=0.9))
