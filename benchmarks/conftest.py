"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact (a table or a figure), prints
its plain-text rendering, and writes it to ``results/<name>.txt`` so the
paper-versus-measured record in ``EXPERIMENTS.md`` can be refreshed from the
committed benchmark output.

Expensive experiment sweeps are computed once per session in fixtures and
shared across the benchmark files that slice different metrics out of them
(e.g. Figures 10–13 / 14–17 / 18–21 all come from one effectiveness sweep).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import SMALL_SCALE, dataset_suite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered tables/series are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_output(results_dir):
    """Callable that persists an ExperimentOutput and echoes it to stdout."""

    def _save(output) -> None:
        path = results_dir / f"{output.name}.txt"
        path.write_text(output.rendered + "\n", encoding="utf-8")
        print()
        print(output.rendered)

    return _save


@pytest.fixture(scope="session")
def scale():
    """The reproduction scale used by the benchmark suite (seconds per artefact)."""
    return SMALL_SCALE


@pytest.fixture(scope="session")
def real_datasets(scale):
    """The four real-data look-alike datasets, built once per session."""
    return dataset_suite(scale, include_synthetic=False)


@pytest.fixture(scope="session")
def all_datasets(scale):
    """Real look-alikes plus Syn-1/Syn-2, built once per session."""
    return dataset_suite(scale, include_synthetic=True)


@pytest.fixture(scope="session")
def effectiveness_results(real_datasets, scale):
    """One effectiveness sweep per real dataset (shared by Figures 10–21)."""
    from repro.experiments import run_effectiveness_real

    return {dataset.name: run_effectiveness_real(dataset, scale) for dataset in real_datasets}


@pytest.fixture(scope="session")
def variant_results(real_datasets, scale):
    """GBDA-vs-variant comparisons (shared by Figures 22–25 and 26–29)."""
    from repro.experiments import run_variant_comparison

    return {
        dataset.name: run_variant_comparison(
            dataset, scale, alpha_values=(10, 50), weight_values=(0.1, 0.5)
        )
        for dataset in real_datasets[:2]
    }
