"""E-F31..42 — Figures 31–42: precision/recall/F1 vs graph size on Syn-1."""

from repro.experiments import run_effectiveness_synthetic


def test_fig31_42_effectiveness_vs_graph_size(benchmark, scale, save_output):
    """Regenerate the Appendix-J figures at τ̂ = 20 and check their shapes."""
    output = benchmark.pedantic(
        lambda: run_effectiveness_synthetic(scale, tau_hat=20, family_size=4),
        rounds=1,
        iterations=1,
    )
    save_output(output)

    sizes = output.data["sizes"]
    series = output.data["series"]

    for metric in ("precision", "recall", "f1"):
        for method, values in series[metric].items():
            assert len(values) == len(sizes), (metric, method)
            assert all(0.0 <= value <= 1.0 for value in values), (metric, method)

    # LSAP's recall stays 1.0 at every graph size (lower-bound property).
    assert all(value == 1.0 for value in series["recall"]["LSAP"])

    # GBDA's precision does not vary wildly with γ (the paper highlights its
    # robustness to the probability threshold).
    gbda_precisions = [values for method, values in series["precision"].items() if method.startswith("GBDA")]
    for position in range(len(sizes)):
        column = [values[position] for values in gbda_precisions]
        assert max(column) - min(column) <= 0.6
