"""E-T4 — Table IV: offline cost of the GBD prior (sampling + GMM fit)."""

from repro.core.gbd_prior import GBDPrior
from repro.experiments import run_table4_gbd_prior_costs


def test_table4_gbd_prior_costs(benchmark, all_datasets, scale, save_output):
    """Regenerate Table IV and benchmark one full GBD-prior fit."""
    output = run_table4_gbd_prior_costs(scale, datasets=all_datasets)
    save_output(output)

    # Shape checks: the dominant cost grows with graph size (AASD-like and the
    # synthetic datasets cost at least as much as the small Fingerprint set).
    data = output.data
    assert data["Fingerprint"]["seconds"] >= 0.0
    assert data["AASD"]["pairs"] == scale.prior_pairs
    assert all(entry["bytes"] > 0 for entry in data.values())

    fingerprint = next(d for d in all_datasets if d.name == "Fingerprint")
    benchmark(
        lambda: GBDPrior(num_components=3, num_pairs=scale.prior_pairs, seed=scale.seed).fit(
            fingerprint.database_graphs
        )
    )
